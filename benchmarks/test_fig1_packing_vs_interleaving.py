"""Figure 1 (concept): space packing vs time interleaving.

The paper's opening figure: four jobs, each saturating a different
resource.  Peak-based multi-resource packing (Fig. 1a) cannot co-locate
them — every job's peak on its own resource is 100% — so they run one
after another.  Time interleaving (Fig. 1b) phase-shifts them onto one
GPU set and runs all four concurrently at ~4x aggregate throughput.

This bench runs both policies through the real simulator on that exact
workload and reports the measured makespans.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.core.muri import MuriScheduler
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.packing import TetrisScheduler
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator


def _bottlenecked_jobs(iterations=500):
    """Four jobs, each dominated by one distinct resource (85% of a
    1-second iteration) with small stages on the other three.

    The minor stages are what break space packing: every job's *peak*
    usage is 100% on all four resources while its stages run, so
    summed peaks never fit (the paper's Fig. 1a); interleaving aligns
    the dominant stages into disjoint slots (Fig. 1b).
    """
    return [
        JobSpec(
            profile=StageProfile(
                tuple(0.85 if i == resource else 0.05 for i in range(4))
            ),
            num_iterations=iterations,
            name=f"fig1-{resource}",
        )
        for resource in range(4)
    ]


def _run(scheduler):
    # A fine scheduling interval isolates the packing-vs-interleaving
    # comparison from tick-boundary waiting.
    simulator = ClusterSimulator(
        scheduler,
        cluster=Cluster(1, 1),
        scheduling_interval=5.0,
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
    )
    return simulator.run(_bottlenecked_jobs(), "fig1")


def test_fig1(benchmark, record_text):
    def run_both():
        return _run(TetrisScheduler()), _run(MuriScheduler(policy="srsf"))

    packing, interleaving = benchmark.pedantic(run_both, rounds=1, iterations=1)

    speedup = packing.makespan / interleaving.makespan
    record_text(
        "fig1_packing_vs_interleaving",
        format_table(
            ["Policy", "Makespan (s)", "Avg JCT (s)"],
            [
                ("Multi-resource packing (Tetris)", packing.makespan,
                 packing.avg_jct),
                ("Multi-resource interleaving (Muri)", interleaving.makespan,
                 interleaving.avg_jct),
                ("Interleaving speedup", speedup, 0.0),
            ],
            title="Fig. 1 — four single-resource jobs on one GPU set "
                  "(paper: interleaving improves throughput 4x)",
        ),
    )

    # Packing runs the four jobs serially: 4 x 500 s.
    assert packing.makespan >= 1900.0
    # Interleaving overlaps them perfectly: ~500 s.
    assert interleaving.makespan <= 520.0
    assert 3.5 <= speedup <= 4.1
