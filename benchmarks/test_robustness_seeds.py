"""Robustness: the headline result across random seeds.

Single-seed results can be lucky.  This bench replays the paper's
headline unknown-duration comparison (Muri-L vs Tiresias on a
congested trace) over several trace/model-assignment seeds and reports
a bootstrap confidence interval for the JCT speedup.  The reproduction
claim is that the whole interval sits above 1.
"""

from repro.analysis.report import format_table
from repro.analysis.stats import bootstrap_mean_ci, multi_seed_speedups
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

SEEDS = (0, 1, 2, 3, 4)


def _one_seed(seed: int):
    trace = generate_trace("1", num_jobs=250, seed=seed)
    specs = build_jobs(trace, seed=seed)
    results = {}
    for name in ("tiresias", "muri-l"):
        results[name] = ClusterSimulator(
            make_scheduler(name), cluster=Cluster(8, 8)
        ).run(specs, trace.name)
    return results["tiresias"].avg_jct, results["muri-l"].avg_jct


def test_robustness_across_seeds(benchmark, record_text):
    speedups = benchmark.pedantic(
        multi_seed_speedups,
        args=(_one_seed, SEEDS),
        rounds=1,
        iterations=1,
    )
    interval = bootstrap_mean_ci(speedups, seed=0)

    rows = [(seed, value) for seed, value in zip(SEEDS, speedups)]
    rows.append(("mean", interval.estimate))
    rows.append(("95% CI low", interval.low))
    rows.append(("95% CI high", interval.high))
    record_text(
        "robustness_seeds",
        format_table(
            ["Seed", "Muri-L/Tiresias JCT speedup"],
            rows,
            title="Headline speedup across 5 seeds (trace 1, 250 jobs)",
        ),
    )

    # Muri wins on every single seed and the CI clears 1.
    assert all(value > 1.0 for value in speedups)
    assert interval.low > 1.0
