"""Robustness: the headline result across random seeds.

Single-seed results can be lucky.  This bench replays the paper's
headline unknown-duration comparison (Muri-L vs Tiresias on a
congested trace) over many trace/model-assignment seeds and reports a
bootstrap confidence interval for the JCT speedup.  The reproduction
claim is that the whole interval sits above 1.

The per-seed runs go through :class:`repro.sweep.SweepRunner`: the
cells are embarrassingly parallel, so on a multi-core machine the
10-seed sweep fits the wall-clock budget the old 5-seed serial loop
needed (on a single core it degrades to the identical serial path).
"""

import os

from repro.analysis.report import format_table
from repro.analysis.stats import bootstrap_mean_ci
from repro.sweep import SweepRunner, robustness_cells

SEEDS = tuple(range(10))
NUM_JOBS = 250


def _sweep_speedups(seeds=SEEDS):
    """Per-seed Tiresias/Muri-L JCT ratios via a parallel sweep."""
    cells = robustness_cells(seeds=seeds, num_jobs=NUM_JOBS)
    runner = SweepRunner(max_workers=min(4, os.cpu_count() or 1))
    results = runner.run(cells)

    jct = {}
    for run in results.values():
        label, seed = run.spec.label.rsplit("@", 1)
        jct[(label, int(seed))] = run.simulation_result().avg_jct
    return [
        jct[("Tiresias", seed)] / jct[("Muri-L", seed)] for seed in seeds
    ]


def test_robustness_across_seeds(benchmark, record_text):
    speedups = benchmark.pedantic(
        _sweep_speedups,
        args=(SEEDS,),
        rounds=1,
        iterations=1,
    )
    interval = bootstrap_mean_ci(speedups, seed=0)

    rows = [(seed, value) for seed, value in zip(SEEDS, speedups)]
    rows.append(("mean", interval.estimate))
    rows.append(("95% CI low", interval.low))
    rows.append(("95% CI high", interval.high))
    record_text(
        "robustness_seeds",
        format_table(
            ["Seed", "Muri-L/Tiresias JCT speedup"],
            rows,
            title=f"Headline speedup across {len(SEEDS)} seeds "
                  f"(trace 1, {NUM_JOBS} jobs)",
        ),
    )

    # Muri wins on every single seed and the CI clears 1.
    assert all(value > 1.0 for value in speedups)
    assert interval.low > 1.0
