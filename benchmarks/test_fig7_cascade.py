"""Figure 7 (concept): why Muri buckets multi-GPU jobs by GPU count.

The paper's Fig. 7 shows a job slowed by another it never shares a GPU
with: inter-job interleaving and intra-job synchronization couple into
a cascade.  This bench builds a randomized 16-GPU assignment two ways —

* **cross-group** (each worker interleaves with whoever is local, the
  anti-pattern), and
* **bucketed** (Muri: a job's whole group is identical on all its
  GPUs) —

and evaluates both with the steady-state cascade model
(`repro.core.cascade`).  Expected shape: cross-group coupling merges
many jobs into giant sharing components and inflates their effective
periods; bucketing keeps components group-sized and periods near the
groups' own cycles.
"""

import random
import statistics

from repro.analysis.report import format_table
from repro.core.cascade import cascade_periods
from repro.core.ordering import best_ordering
from repro.models.zoo import DEFAULT_MODELS, get_model

NUM_GPUS = 16
JOBS_PER_GPU = 2


def _build_assignments(seed=0):
    """Two-GPU jobs placed on 16 GPUs, 2 jobs per GPU, two ways."""
    rng = random.Random(seed)
    jobs = []
    for index in range(NUM_GPUS):
        model = get_model(rng.choice(DEFAULT_MODELS))
        jobs.append((f"job{index}", model.stage_profile(2)))

    # Cross-group: workers scattered so partner sets differ per GPU.
    cross = {gpu: [] for gpu in range(NUM_GPUS)}
    slots = [gpu for gpu in range(NUM_GPUS) for _ in range(JOBS_PER_GPU)]
    rng.shuffle(slots)
    for (job_id, profile), (g1, g2) in zip(
        jobs, zip(slots[0::2], slots[1::2])
    ):
        cross[g1].append((job_id, profile))
        cross[g2].append((job_id, profile))

    # Bucketed: jobs paired; each pair co-located on the same two GPUs.
    bucketed = {gpu: [] for gpu in range(NUM_GPUS)}
    for pair_index in range(0, len(jobs), 2):
        pair = jobs[pair_index:pair_index + 2]
        g1, g2 = 2 * (pair_index // 2), 2 * (pair_index // 2) + 1
        for job_id, profile in pair:
            bucketed[g1].append((job_id, profile))
            bucketed[g2].append((job_id, profile))

    def with_offsets(assignments):
        result = {}
        for gpu, members in assignments.items():
            if not members:
                continue
            profiles = tuple(profile for _job, profile in members)
            offsets, _period = best_ordering(profiles)
            result[gpu] = [
                (job_id, profile, offset)
                for (job_id, profile), offset in zip(members, offsets)
            ]
        return result

    return with_offsets(cross), with_offsets(bucketed), dict(jobs)


def test_fig7(benchmark, record_text):
    def run():
        rows = []
        for seed in range(8):
            cross, bucketed, profiles = _build_assignments(seed)
            cross_periods = cascade_periods(cross)
            bucketed_periods = cascade_periods(bucketed)
            cross_slow = statistics.mean(
                cross_periods[j] / profiles[j].iteration_time
                for j in profiles
            )
            bucketed_slow = statistics.mean(
                bucketed_periods[j] / profiles[j].iteration_time
                for j in profiles
            )
            rows.append((seed, cross_slow, bucketed_slow))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    mean_cross = statistics.mean(r[1] for r in rows)
    mean_bucketed = statistics.mean(r[2] for r in rows)
    rows.append(("mean", mean_cross, mean_bucketed))
    record_text(
        "fig7_cascade",
        format_table(
            ["Seed", "Cross-group slowdown", "Bucketed slowdown"],
            rows,
            title="Fig. 7 — mean period / solo iteration under the "
                  "steady-state cascade model (lower is better)",
        ),
    )

    # Bucketing strictly reduces the cascade on every seed.
    for seed, cross_slow, bucketed_slow in rows[:-1]:
        assert bucketed_slow <= cross_slow + 1e-9, seed
    assert mean_bucketed < mean_cross
