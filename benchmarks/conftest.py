"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides
timing via pytest-benchmark, each bench writes its reproduced rows to
``benchmarks/results/<name>.txt`` (and prints them, visible with -s) so
the numbers survive the run.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_text(results_dir):
    """Write a reproduced table to disk and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
