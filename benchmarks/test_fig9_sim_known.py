"""Figure 9: trace-driven simulations, job durations known.

Paper: across traces 1-4 and the all-at-zero variants 1'-4', Muri-S
improves average JCT by 1.13-2.26x, makespan by 1-1.65x, and tail JCT
by 1.36-4.57x over SRTF/SRSF.

Shape expectations checked here:

* Muri-S never loses to SRTF on any trace;
* prime (t=0) variants show makespan speedups at least as large as the
  original traces (the paper's "impact of load");
* trace 3 (lightly loaded) shows approximately no makespan speedup.
"""

from repro.analysis.experiments import simulation_comparison
from repro.analysis.report import format_table

TRACES = ("1", "2", "3", "4", "1'", "2'", "3'", "4'")


def test_fig9(benchmark, record_text):
    sweep = benchmark.pedantic(
        simulation_comparison,
        kwargs=dict(duration_known=True, trace_ids=TRACES, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = []
    for trace_id in TRACES:
        for baseline, speedups in sweep[trace_id].items():
            rows.append(
                (trace_id, baseline, speedups["avg_jct"],
                 speedups["makespan"], speedups["p99_jct"])
            )
    record_text(
        "fig9_sim_known",
        format_table(
            ["Trace", "Baseline", "JCT speedup", "Makespan speedup", "p99 speedup"],
            rows,
            title="Fig. 9 — Muri-S speedups (paper: JCT 1.13-2.26x, "
                  "makespan 1-1.65x, p99 1.36-4.57x)",
        ),
    )

    for trace_id in TRACES:
        srtf = sweep[trace_id]["SRTF"]
        assert srtf["avg_jct"] >= 0.95, trace_id
        assert srtf["makespan"] >= 0.95, trace_id

    # Load effect: primes beat originals on makespan speedup vs SRTF.
    for base in ("1", "2", "4"):
        original = sweep[base]["SRTF"]["makespan"]
        prime = sweep[base + "'"]["SRTF"]["makespan"]
        assert prime >= original - 0.25, base

    # Trace 3 is light: no meaningful makespan speedup.
    assert sweep["3"]["SRSF"]["makespan"] < 1.15
