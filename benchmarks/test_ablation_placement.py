"""Ablation (DESIGN.md section 5): placement policy.

The paper's prototype "allocates GPUs in descending order based on the
number of GPUs a job needs, which avoids fragmentation and minimizes
the number of nodes used by a job".  This bench compares that policy
against worst-fit spreading and random placement under Muri-S on a
multi-GPU-heavy workload, where fragmentation forces jobs to span
machines and pay the cross-machine synchronization penalty.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.cluster.placement import DescendingPlacer, RandomPlacer, SpreadPlacer
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

PLACERS = {
    "descending/best-fit (paper)": DescendingPlacer,
    "spread/worst-fit": SpreadPlacer,
    "random": lambda: RandomPlacer(seed=1),
}


def test_ablation_placement(benchmark, record_text):
    # Trace 2 has the heaviest multi-GPU mix.
    trace = generate_trace("2", num_jobs=250, seed=7)
    specs = build_jobs(trace, seed=7)

    def sweep():
        table = {}
        for label, factory in PLACERS.items():
            result = ClusterSimulator(
                make_scheduler("muri-s"),
                cluster=Cluster(8, 8),
                placer=factory(),
            ).run(specs, trace.name)
            table[label] = result
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = table["descending/best-fit (paper)"]
    rows = [
        (label, result.avg_jct, result.makespan,
         result.avg_jct / baseline.avg_jct)
        for label, result in table.items()
    ]
    record_text(
        "ablation_placement",
        format_table(
            ["Placer", "Avg JCT (s)", "Makespan (s)", "JCT vs paper policy"],
            rows,
            title="Placement-policy ablation under Muri-S (trace 2)",
        ),
    )

    # The paper's consolidating policy is never the worst choice.
    jcts = {label: result.avg_jct for label, result in table.items()}
    assert jcts["descending/best-fit (paper)"] <= max(jcts.values()) + 1e-9
    # And beats or matches random placement.
    assert (
        jcts["descending/best-fit (paper)"] <= jcts["random"] * 1.05
    )
