"""Figure 12: impact of the number of jobs in one group.

Paper (all jobs submitted at t=0, normalized to AntMan, lower is
better): Muri-L-2/3/4 all beat AntMan on every trace; average JCT and
makespan correlate negatively with group size overall (4-job grouping
is best), while 2-job grouping can match or beat 3-job grouping
because grouping overhead grows with group size.
"""

from repro.analysis.experiments import group_size_comparison
from repro.analysis.report import format_table

TRACES = ("1", "2", "3", "4")


def test_fig12(benchmark, record_text):
    sweep = benchmark.pedantic(
        group_size_comparison,
        kwargs=dict(trace_ids=TRACES, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = []
    for trace_id in TRACES:
        for scheduler, metrics in sweep[trace_id].items():
            rows.append(
                (trace_id, scheduler, metrics["avg_jct"], metrics["makespan"])
            )
    record_text(
        "fig12_group_size",
        format_table(
            ["Trace", "Scheduler", "Norm. JCT", "Norm. Makespan"],
            rows,
            title="Fig. 12 — normalized to AntMan, all submissions at t=0 "
                  "(lower is better; paper: Muri beats AntMan at any size, "
                  "4-job best overall)",
        ),
    )

    for trace_id in TRACES:
        row = sweep[trace_id]
        # Muri beats AntMan regardless of group size.
        for size in (2, 3, 4):
            assert row[f"Muri-L-{size}"]["avg_jct"] < 1.0, (trace_id, size)
            assert row[f"Muri-L-{size}"]["makespan"] <= 1.02, (trace_id, size)

    # Across traces, 4-job grouping is the best configuration on
    # average.
    def mean_jct(size):
        return sum(sweep[t][f"Muri-L-{size}"]["avg_jct"] for t in TRACES) / len(TRACES)

    assert mean_jct(4) <= mean_jct(2) + 0.02
    assert mean_jct(4) <= mean_jct(3) + 0.02
