"""Table 5: testbed comparison, job durations unknown.

Paper (400-job busiest interval, 64 GPUs):

                               Tiresias  Themis  Muri-L
    Normalized JCT             2.59      3.56    1
    Normalized Makespan        1.48      1.47    1
    Normalized 99th %-ile JCT  2.54      2.60    1

Shape expectations: Muri-L wins every metric against both baselines.
"""

from repro.analysis.experiments import compare_testbed
from repro.analysis.report import format_speedup_table

BASELINES = ("Tiresias", "Themis", "Muri-L")


def test_table5(benchmark, record_text):
    _results, rows = benchmark.pedantic(
        compare_testbed,
        kwargs=dict(duration_known=False, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )
    record_text(
        "table5_testbed_unknown",
        format_speedup_table(
            rows, BASELINES,
            title="Table 5 — durations unknown (paper: Tiresias "
                  "2.59/1.48/2.54, Themis 3.56/1.47/2.60, Muri-L 1/1/1)",
        ),
    )
    assert rows["Normalized JCT"]["Muri-L"] == 1.0
    for baseline in ("Tiresias", "Themis"):
        assert rows["Normalized JCT"][baseline] > 1.0, baseline
        assert rows["Normalized Makespan"][baseline] >= 1.0, baseline
        assert rows["Normalized 99th %-ile JCT"][baseline] >= 1.0, baseline
    # The unknown-duration gap exceeds the known-duration gap (the
    # paper's explanation: picking the right jobs is harder blind).
    assert rows["Normalized JCT"]["Tiresias"] > 1.3
