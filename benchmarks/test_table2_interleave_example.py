"""Table 2: the four-model interleaving example.

Paper (16 GPUs):

    Model        ShuffleNet  A2C    GPT2  VGG16
    Bottleneck   Storage     CPU    GPU   Network
    Separate     2041        1811   134   890     samples/s
    Sharing      1756        878    55    220     samples/s
    Norm. Tput   0.86        0.48   0.41  0.25
    Total Norm. Tput                2.00

The shapes that must hold: every model is slower shared than separate,
ShuffleNet suffers least, and the total normalized throughput is ~2x.
"""

from repro.analysis.experiments import table2_interleaving_example
from repro.analysis.report import format_table
from repro.jobs.resources import Resource

PAPER_ORDER = ("ShuffleNet", "A2C", "GPT-2", "VGG16")
PAPER_BOTTLENECKS = {
    "ShuffleNet": Resource.STORAGE,
    "A2C": Resource.CPU,
    "GPT-2": Resource.GPU,
    "VGG16": Resource.NETWORK,
}


def test_table2(benchmark, record_text):
    table = benchmark.pedantic(
        table2_interleaving_example, rounds=1, iterations=1
    )

    rows = []
    for name in PAPER_ORDER:
        row = table[name]
        rows.append(
            (
                name,
                Resource(int(row["bottleneck"])).name.title(),
                row["separate_tput"],
                row["sharing_tput"],
                row["normalized_tput"],
            )
        )
    total = table["__total__"]["total_normalized_tput"]
    rows.append(("Total Norm. Tput", "", 0.0, 0.0, total))
    record_text(
        "table2_interleave_example",
        format_table(
            ["Model", "Bottleneck", "Separate Tput", "Sharing Tput", "Norm. Tput"],
            rows,
            title="Table 2 (paper total: 2.00x)",
        ),
    )

    # Bottlenecks match the paper row.
    for name, bottleneck in PAPER_BOTTLENECKS.items():
        assert int(table[name]["bottleneck"]) == int(bottleneck)
    # Every job runs slower shared than separate.
    for name in PAPER_ORDER:
        assert table[name]["sharing_tput"] < table[name]["separate_tput"]
        assert 0.0 < table[name]["normalized_tput"] < 1.0
    # Total normalized throughput near the paper's 2.0x.
    assert 1.7 <= total <= 2.4
