"""Ablation (DESIGN.md section 5): matching-algorithm quality.

Compares the three matchers behind Muri's grouping stage on identical
job sets:

* **blossom** — the paper's choice: optimal per round, polynomial;
* **greedy**  — the "w/o Blossom" arm: pack in priority order;
* **exact**   — optimal k-uniform hypergraph matching (exponential),
  the quality ceiling the multi-round heuristic approximates.

Reported: total believed interleaving efficiency of the produced plans
plus wall-clock per call.  Expected shape: exact >= blossom >= greedy,
with blossom capturing most of the exact-vs-greedy gap at a tiny
fraction of exact's cost.
"""

import random
import time

from repro.analysis.report import format_table
from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.models.zoo import DEFAULT_MODELS, get_model

# Eight jobs with capacity for two GPU sets force every matcher to
# produce exactly two 4-job groups, making the totals comparable.
NUM_JOBS = 8
CAPACITY = 2
NUM_TRIALS = 12


def _job_sets():
    rng = random.Random(99)
    sets = []
    for _ in range(NUM_TRIALS):
        jobs = [
            Job(JobSpec(
                profile=get_model(rng.choice(DEFAULT_MODELS)).stage_profile(1),
                num_iterations=100,
            ))
            for _ in range(NUM_JOBS)
        ]
        sets.append(jobs)
    return sets


def test_ablation_matchers(benchmark, record_text):
    job_sets = _job_sets()

    def run_all():
        totals = {"exact": 0.0, "blossom": 0.0, "greedy": 0.0}
        timings = {"exact": 0.0, "blossom": 0.0, "greedy": 0.0}
        for jobs in job_sets:
            for matcher in totals:
                grouper = MultiRoundGrouper(matcher=matcher)
                start = time.perf_counter()
                result = grouper.group(jobs, capacity=CAPACITY)
                timings[matcher] += time.perf_counter() - start
                totals[matcher] += result.total_efficiency
        return totals, timings

    totals, timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (matcher, totals[matcher] / NUM_TRIALS,
         totals[matcher] / totals["exact"],
         timings[matcher] * 1000 / NUM_TRIALS)
        for matcher in ("exact", "blossom", "greedy")
    ]
    record_text(
        "ablation_matchers",
        format_table(
            ["Matcher", "Mean plan efficiency", "vs exact", "ms/call"],
            rows,
            title=f"Matching quality, {NUM_JOBS} jobs x {NUM_TRIALS} trials "
                  "(exact = quality ceiling)",
        ),
    )

    assert totals["exact"] >= totals["blossom"] - 1e-6
    assert totals["blossom"] >= totals["greedy"] - 1e-6
    # Blossom recovers at least 95% of the exact optimum on these sizes.
    assert totals["blossom"] / totals["exact"] >= 0.95
    # And is far cheaper than exact.
    assert timings["blossom"] < timings["exact"]
