"""The invariant checker: catalog, predicates, and tracer plumbing."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.group import JobGroup
from repro.core.ordering import best_ordering
from repro.core.priorities import fifo_priority
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.observe.events import EventCategory
from repro.observe.tracer import NULL_SPAN
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.verify import (
    INVARIANT_CATALOG,
    InvariantChecker,
    InvariantViolation,
    check_group_wellformed,
)


def make_job(durations=(1.0, 2.0, 1.0, 0.5), num_gpus=1, submit=0.0,
             job_id=None, iterations=10):
    return Job(JobSpec(
        profile=StageProfile(tuple(durations)),
        num_gpus=num_gpus,
        submit_time=submit,
        num_iterations=iterations,
        job_id=job_id,
    ))


def make_pair_group(num_gpus=1):
    jobs = (make_job(num_gpus=num_gpus), make_job((0.5, 1.0, 2.0, 1.0),
                                                  num_gpus=num_gpus))
    profiles = tuple(job.profile for job in jobs)
    offsets, _period = best_ordering(profiles, 4)
    return JobGroup(jobs, profiles, offsets)


class _StubGroup:
    """A group-shaped object that bypasses JobGroup's own validation."""

    def __init__(self, jobs, offsets, believed_efficiency=None,
                 num_resources=4):
        self.jobs = tuple(jobs)
        self.believed_profiles = tuple(job.profile for job in jobs)
        self.offsets = tuple(offsets)
        self.num_resources = num_resources
        self._gamma = believed_efficiency

    @property
    def believed_efficiency(self):
        if self._gamma is not None:
            return self._gamma
        return JobGroup(
            self.jobs, self.believed_profiles, self.offsets
        ).believed_efficiency


class TestCatalog:
    def test_every_invariant_documented(self):
        for name, blurb in INVARIANT_CATALOG.items():
            assert isinstance(name, str) and name
            assert isinstance(blurb, str) and len(blurb) > 20

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariants"):
            InvariantChecker(invariants=["gpu_capacity", "nope"])

    def test_subset_arms_only_named_checks(self):
        checker = InvariantChecker(invariants=["clock_monotone"])
        assert checker.invariants == {"clock_monotone"}


class TestCheckGroupWellformed:
    def test_solo_group_passes(self):
        check_group_wellformed(JobGroup.solo(make_job()))

    def test_pair_group_passes(self):
        check_group_wellformed(make_pair_group())

    def test_mixed_gpu_counts_fail(self):
        group = _StubGroup(
            (make_job(num_gpus=1, job_id=0), make_job(num_gpus=2, job_id=1)),
            offsets=(0, 1),
            believed_efficiency=0.5,
        )
        with pytest.raises(InvariantViolation) as exc:
            check_group_wellformed(group)
        assert exc.value.invariant == "bucket_homogeneous"

    def test_colliding_offsets_fail(self):
        group = _StubGroup(
            (make_job(job_id=0), make_job(job_id=1)),
            offsets=(0, 4),  # 4 % 4 == 0: same phase
            believed_efficiency=0.5,
        )
        with pytest.raises(InvariantViolation) as exc:
            check_group_wellformed(group)
        assert exc.value.invariant == "offsets_distinct"

    def test_wrong_believed_gamma_fails(self):
        good = make_pair_group()
        lying = _StubGroup(good.jobs, good.offsets, believed_efficiency=0.123)
        with pytest.raises(InvariantViolation) as exc:
            check_group_wellformed(lying)
        assert exc.value.invariant == "gamma_bounds"
        assert exc.value.details["believed"] == pytest.approx(0.123)

    def test_malformed_offsets_reported_as_gamma_failure(self):
        # With offsets_distinct un-armed, the Eq. 3 reference rejects
        # the offsets; that must surface as a violation, not a crash.
        group = _StubGroup(
            (make_job(job_id=0), make_job(job_id=1)),
            offsets=(0, 0),
            believed_efficiency=0.5,
        )
        with pytest.raises(InvariantViolation) as exc:
            check_group_wellformed(group, invariants={"gamma_bounds"})
        assert exc.value.invariant == "gamma_bounds"

    def test_unarmed_invariants_are_skipped(self):
        group = _StubGroup(
            (make_job(num_gpus=1, job_id=0), make_job(num_gpus=2, job_id=1)),
            offsets=(0, 1),
            believed_efficiency=0.5,
        )
        check_group_wellformed(group, invariants={"clock_monotone"})


class TestEventDrivenChecks:
    def emit(self, checker, name, t, **args):
        checker.emit(EventCategory.JOB, name, t, **args)

    def test_clock_monotone_violation(self):
        checker = InvariantChecker(invariants=["clock_monotone"])
        self.emit(checker, "job.arrive", 10.0, job=1)
        with pytest.raises(InvariantViolation) as exc:
            self.emit(checker, "job.arrive", 5.0, job=2)
        assert exc.value.invariant == "clock_monotone"
        assert exc.value.details["previous"] == 10.0

    def test_run_start_resets_clock(self):
        checker = InvariantChecker(invariants=["clock_monotone"])
        self.emit(checker, "job.arrive", 100.0, job=1)
        self.emit(checker, "sim.run.start", 0.0, gpus=8)
        self.emit(checker, "job.arrive", 1.0, job=2)

    def test_exclusive_membership_violation(self):
        checker = InvariantChecker(invariants=["exclusive_membership"])
        self.emit(checker, "group.start", 0.0, members=[1, 2], gpus=1)
        with pytest.raises(InvariantViolation) as exc:
            self.emit(checker, "group.start", 0.0, members=[2, 3], gpus=1)
        assert exc.value.invariant == "exclusive_membership"
        assert exc.value.details["job"] == 2

    def test_preempt_releases_membership(self):
        checker = InvariantChecker(invariants=["exclusive_membership"])
        self.emit(checker, "group.start", 0.0, members=[1, 2], gpus=1)
        self.emit(checker, "group.preempt", 5.0, members=[1, 2])
        self.emit(checker, "group.start", 5.0, members=[2, 3], gpus=1)

    def test_gpu_capacity_violation(self):
        checker = InvariantChecker(invariants=["gpu_capacity"])
        self.emit(checker, "sim.run.start", 0.0, gpus=8)
        self.emit(checker, "group.start", 0.0, members=[1], gpus=6)
        with pytest.raises(InvariantViolation) as exc:
            self.emit(checker, "group.start", 0.0, members=[2], gpus=4)
        assert exc.value.invariant == "gpu_capacity"
        assert exc.value.details["allocated"] == 10

    def test_finish_frees_capacity(self):
        checker = InvariantChecker(invariants=["gpu_capacity"])
        self.emit(checker, "sim.run.start", 0.0, gpus=8)
        self.emit(checker, "group.start", 0.0, members=[1], gpus=6)
        self.emit(checker, "job.finish", 4.0, job=1)
        self.emit(checker, "group.start", 4.0, members=[2], gpus=8)

    def test_progress_conserved_accepts_legit_fault(self):
        checker = InvariantChecker(invariants=["progress_conserved"])
        # 40 of 100 iterations executed, half lost: 60 -> 80 remaining.
        self.emit(
            checker, "job.fault", 10.0, job=1,
            remaining_before=60.0, remaining_after=80.0,
            total_iterations=100, progress_loss=0.5,
        )

    def test_progress_conserved_rejects_minted_progress(self):
        checker = InvariantChecker(invariants=["progress_conserved"])
        with pytest.raises(InvariantViolation) as exc:
            self.emit(
                checker, "job.fault", 10.0, job=1,
                remaining_before=60.0, remaining_after=40.0,
                total_iterations=100, progress_loss=0.5,
            )
        assert exc.value.invariant == "progress_conserved"

    def test_progress_conserved_rejects_overshoot(self):
        checker = InvariantChecker(invariants=["progress_conserved"])
        with pytest.raises(InvariantViolation):
            self.emit(
                checker, "job.fault", 10.0, job=1,
                remaining_before=60.0, remaining_after=95.0,
                total_iterations=100, progress_loss=0.5,
            )

    def test_non_strict_mode_accumulates(self):
        checker = InvariantChecker(
            invariants=["clock_monotone"], strict=False
        )
        self.emit(checker, "a", 10.0)
        self.emit(checker, "b", 5.0)
        self.emit(checker, "c", 2.0)
        assert len(checker.violations) == 2
        assert all(
            v.invariant == "clock_monotone" for v in checker.violations
        )


class TestAffinityChecks:
    """``sched.hetero.place`` → ``placement_respects_affinity``."""

    def emit(self, checker, t=0.0, **args):
        checker.emit(EventCategory.SCHED, "sched.hetero.place", t, **args)

    def checker(self):
        return InvariantChecker(invariants=["placement_respects_affinity"])

    def test_mixed_pins_violation(self):
        checker = self.checker()
        with pytest.raises(InvariantViolation) as exc:
            self.emit(
                checker, members=[1, 2],
                affinities=[("v100", "pin"), ("a100", "pin")],
                machine_types=["v100"],
            )
        assert exc.value.invariant == "placement_respects_affinity"
        assert "mixes pinned GPU generations" in exc.value.message

    def test_pinned_group_on_wrong_machines(self):
        checker = self.checker()
        with pytest.raises(InvariantViolation) as exc:
            self.emit(
                checker, members=[3],
                affinities=[("a100", "pin")],
                machine_types=["v100", "a100"],
            )
        assert exc.value.details["pinned"] == "a100"

    def test_pinned_group_on_matching_machines_passes(self):
        checker = self.checker()
        self.emit(
            checker, members=[1, 2],
            affinities=[("a100", "pin"), (None, "pin")],
            machine_types=["a100", "a100"],
        )
        assert not checker.violations

    def test_prefer_only_groups_may_mix(self):
        # Soft preferences are hints, not promises: a prefer-only
        # group may land anywhere and may mix generations freely.
        checker = self.checker()
        self.emit(
            checker, members=[1, 2],
            affinities=[("v100", "prefer"), ("a100", "prefer")],
            machine_types=["k80", "a100"],
        )
        assert not checker.violations

    def test_pin_with_prefer_companions_checks_only_the_pin(self):
        checker = self.checker()
        self.emit(
            checker, members=[1, 2],
            affinities=[("v100", "pin"), ("a100", "prefer")],
            machine_types=["v100"],
        )
        assert not checker.violations

    def test_unarmed_check_skipped(self):
        checker = InvariantChecker(invariants=["clock_monotone"])
        self.emit(
            checker, members=[1, 2],
            affinities=[("v100", "pin"), ("a100", "pin")],
            machine_types=["k80"],
        )
        assert not checker.violations


class TestInspectChecks:
    def test_plan_capacity_violation(self):
        checker = InvariantChecker(invariants=["plan_capacity"])
        plan = [
            JobGroup.solo(make_job(num_gpus=4, job_id=0)),
            JobGroup.solo(make_job(num_gpus=4, job_id=1)),
        ]
        with pytest.raises(InvariantViolation) as exc:
            checker.inspect("sim.plan", 0.0, groups=plan, total_gpus=4)
        assert exc.value.invariant == "plan_capacity"
        assert exc.value.details["demand"] == 8

    def test_plan_membership_violation(self):
        checker = InvariantChecker(invariants=["exclusive_membership"])
        job = make_job(job_id=7)
        plan = [JobGroup.solo(job), JobGroup.solo(job)]
        with pytest.raises(InvariantViolation) as exc:
            checker.inspect("sched.order", 0.0, plan=plan, running=[],
                            policy=None)
        assert exc.value.invariant == "exclusive_membership"

    def test_queue_order_violation(self):
        checker = InvariantChecker(invariants=["queue_order"])
        late = make_job(submit=100.0, job_id=0)
        early = make_job(submit=0.0, job_id=1)
        plan = [JobGroup.solo(late), JobGroup.solo(early)]
        with pytest.raises(InvariantViolation) as exc:
            checker.inspect("sched.order", 0.0, plan=plan, running=[],
                            policy=fifo_priority)
        assert exc.value.invariant == "queue_order"

    def test_queue_order_skips_kept_groups(self):
        checker = InvariantChecker(invariants=["queue_order"])
        late = make_job(submit=100.0, job_id=0)
        early = make_job(submit=0.0, job_id=1)
        plan = [JobGroup.solo(late), JobGroup.solo(early)]
        # The late group is already running (kept), so it may sit first.
        checker.inspect("sched.order", 0.0, plan=plan,
                        running=[frozenset({0})], policy=fifo_priority)

    def test_cluster_accounting_check(self):
        checker = InvariantChecker(invariants=["gpu_capacity"])
        cluster = Cluster(2, 4)
        checker.inspect("sim.cluster", 0.0, cluster=cluster)
        cluster.machines[0].allocate(2, owner=0)
        checker.inspect("sim.cluster", 0.0, cluster=cluster)

    def test_unknown_inspect_point_ignored(self):
        InvariantChecker().inspect("sim.someday", 1.0, whatever=object())


class TestTracerSurface:
    def test_events_dropped_by_default(self):
        checker = InvariantChecker()
        checker.emit(EventCategory.JOB, "job.arrive", 1.0, job=1)
        checker.count("edges", 5)
        assert len(checker) == 0
        assert checker.counters == {}
        assert checker.span("x", 1.0) is NULL_SPAN
        assert checker.candidate_provenance is False

    def test_store_events_keeps_full_log(self):
        checker = InvariantChecker(store_events=True)
        checker.emit(EventCategory.JOB, "job.arrive", 1.0, job=1)
        checker.count("edges", 5)
        with checker.span("x", 1.0):
            pass
        assert len(checker) == 2
        assert checker.counters == {"edges": 5}
        assert checker.candidate_provenance is True

    def test_violation_serializes(self):
        violation = InvariantViolation(
            "gpu_capacity", "too many", 3.0, {"allocated": 9},
            provenance={1: [{"kind": "outcome", "outcome": "started"}]},
        )
        data = violation.to_dict()
        assert data["invariant"] == "gpu_capacity"
        assert data["details"] == {"allocated": 9}
        assert data["provenance"]["1"][0]["outcome"] == "started"
        assert "gpu_capacity" in str(violation)


class TestEndToEnd:
    def build_specs(self, n=30):
        from repro.trace.philly import generate_trace
        from repro.trace.workload import build_jobs

        trace = generate_trace("1", num_jobs=n, seed=7, at_time_zero=True)
        return [s for s in build_jobs(trace, seed=7) if s.num_gpus <= 8]

    def test_clean_run_has_no_violations(self):
        checker = InvariantChecker()
        simulator = ClusterSimulator(
            make_scheduler("muri-s", tracer=checker),
            cluster=Cluster(2, 4),
            tracer=checker,
        )
        result = simulator.run(self.build_specs(), "verify-clean")
        assert result.num_jobs > 0
        assert checker.violations == []

    def test_checking_is_off_by_default(self):
        # No tracer anywhere: the stack must neither build a checker
        # nor pay for one.
        simulator = ClusterSimulator(
            make_scheduler("muri-s"), cluster=Cluster(2, 4)
        )
        assert simulator.tracer is None
        assert simulator.scheduler.tracer is None
        result = simulator.run(self.build_specs(), "verify-off")
        assert result.num_jobs > 0
