"""The scalar Eq. 3/4 reference vs the optimized ordering kernels."""

import random

import pytest

from repro.core.efficiency import efficiency_for_period, interleaving_efficiency
from repro.core.ordering import best_ordering, group_iteration_time
from repro.jobs.stage import StageProfile
from repro.verify.reference import (
    reference_best_period,
    reference_efficiency,
    reference_period,
    reference_slot_durations,
)

K = 4


def random_rows(rng, n, zero_chance=0.2):
    rows = []
    for _ in range(n):
        row = [
            round(rng.uniform(0.1, 8.0), 3)
            if rng.random() > zero_chance else 0.0
            for _ in range(K)
        ]
        if not any(row):
            row[rng.randrange(K)] = 1.0
        rows.append(tuple(row))
    return rows


class TestSlotModel:
    def test_paper_perfect_pair(self):
        # Two jobs that tile each other exactly: every resource busy
        # in every slot, so gamma is 1 (the paper's jobs A and B).
        rows = [(1.0, 1.0), (1.0, 1.0)]
        period = reference_period(rows, (0, 1), 2)
        assert period == pytest.approx(2.0)
        assert reference_efficiency(rows, period, 2) == pytest.approx(1.0)

    def test_solo_job_identity(self):
        rows = [(1.0, 2.0, 0.5, 0.0)]
        assert reference_slot_durations(rows, (0,), K) == [1.0, 2.0, 0.5, 0.0]
        assert reference_period(rows, (0,), K) == pytest.approx(3.5)

    def test_colliding_offsets_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            reference_period([(1.0,) * K, (1.0,) * K], (0, 4), K)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            reference_period([], (), K)

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            reference_efficiency([(0.0,) * K], 0.0, K)


class TestAgainstOptimizedKernels:
    def test_period_matches_group_iteration_time(self):
        rng = random.Random(42)
        for _ in range(50):
            rows = random_rows(rng, rng.randint(1, K))
            profiles = [StageProfile(row) for row in rows]
            offsets = tuple(
                rng.sample(range(K), len(rows))
            )
            assert reference_period(rows, offsets, K) == pytest.approx(
                group_iteration_time(profiles, offsets, K)
            )

    def test_best_period_matches_best_ordering(self):
        rng = random.Random(7)
        for _ in range(30):
            rows = random_rows(rng, rng.randint(1, K))
            profiles = [StageProfile(row) for row in rows]
            ref_offsets, ref_period = reference_best_period(rows, K)
            opt_offsets, opt_period = best_ordering(profiles, K)
            assert ref_period == pytest.approx(opt_period)
            assert tuple(ref_offsets) == tuple(opt_offsets)

    def test_efficiency_matches_eq4(self):
        rng = random.Random(3)
        for _ in range(30):
            rows = random_rows(rng, rng.randint(1, K))
            profiles = [StageProfile(row) for row in rows]
            gamma = interleaving_efficiency(profiles)
            _offsets, period = reference_best_period(rows, K)
            assert reference_efficiency(rows, period, K) == pytest.approx(gamma)
            assert efficiency_for_period(profiles, period, K) == pytest.approx(
                gamma
            )

    def test_gamma_stays_in_unit_interval(self):
        rng = random.Random(11)
        for _ in range(50):
            rows = random_rows(rng, rng.randint(1, K))
            _offsets, period = reference_best_period(rows, K)
            gamma = reference_efficiency(rows, period, K)
            assert 0.0 < gamma <= 1.0 + 1e-9

    def test_too_many_jobs_rejected(self):
        rows = random_rows(random.Random(0), K + 1)
        with pytest.raises(ValueError, match="contention"):
            reference_best_period(rows, K)
