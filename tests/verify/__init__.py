"""Tests for the repro.verify verification harness."""
