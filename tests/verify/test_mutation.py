"""Mutation smoke tests: deliberately broken components must be caught.

The point of the harness is that an optimization bug in a hot path
cannot slip through silently.  These tests *inject* such bugs — a
grouper that proposes one job in two groups of the same plan (the
exact double-booking the Fig. 7 analysis forbids), and a placer that
drops GPU-generation affinity on the floor — and demand that (a) an
armed episode catches each with a structured violation, (b) the
violation serializes to a repro file, and (c) the repro file replays
to the same violation.
"""

import pytest

from repro.cluster.placement import DescendingPlacer
from repro.core.group import JobGroup
from repro.core.grouping import GroupingResult, MultiRoundGrouper
from repro.core.muri import MuriScheduler
from repro.schedulers.registry import SCHEDULERS, register_scheduler
from repro.verify import (
    EpisodeSpec,
    load_repro,
    run_episode,
    save_repro,
)
from repro.verify.repro_file import JobSpecData

BROKEN_NAME = "broken-muri"


class DoubleBookingGrouper(MultiRoundGrouper):
    """Proposes the first member of a multi-job group a second time."""

    def group(self, jobs, *args, **kwargs):
        result = super().group(jobs, *args, **kwargs)
        for formed in result.groups:
            if formed.size > 1:
                extra = JobGroup.solo(formed.jobs[0])
                return GroupingResult(
                    groups=result.groups + (extra,),
                    total_efficiency=result.total_efficiency,
                    rounds=result.rounds,
                    total_gpu_demand=result.total_gpu_demand + extra.num_gpus,
                )
        return result


def broken_factory():
    scheduler = MuriScheduler(policy="srsf")
    scheduler.grouper = DoubleBookingGrouper()
    return scheduler


@pytest.fixture()
def broken_scheduler():
    existing = SCHEDULERS.get(BROKEN_NAME)
    register_scheduler(BROKEN_NAME, broken_factory, replace=True)
    yield BROKEN_NAME
    if existing is None:
        dict.__delitem__(SCHEDULERS, BROKEN_NAME)
    else:
        register_scheduler(BROKEN_NAME, existing, replace=True)


def broken_episode():
    return EpisodeSpec(
        scheduler=BROKEN_NAME,
        num_machines=1,
        gpus_per_machine=2,
        jobs=[
            JobSpecData(durations=(1.0, 2.0, 1.0, 0.5))
            for _ in range(6)
        ],
    )


class TestMutationIsCaught:
    def test_double_booking_caught_with_provenance(self, broken_scheduler):
        outcome = run_episode(broken_episode())
        assert not outcome.ok
        violation = outcome.violation
        assert violation.invariant == "exclusive_membership"
        # The violation explains itself: which job, which two groups,
        # and the grouping provenance collected before the failure.
        assert "two groups" in violation.message
        assert violation.details["job"] == violation.details["second_group"][0]
        assert violation.provenance

    def test_repro_file_roundtrip_reproduces(self, broken_scheduler, tmp_path):
        outcome = run_episode(broken_episode())
        path = tmp_path / "double-booking.json"
        save_repro(path, broken_episode(), outcome.violation)

        episode, recorded = load_repro(path)
        assert recorded["invariant"] == "exclusive_membership"
        replay = run_episode(episode)
        assert not replay.ok
        assert replay.violation.invariant == "exclusive_membership"

    def test_healthy_scheduler_passes_same_episode(self):
        episode = broken_episode()
        episode.scheduler = "muri-s"
        outcome = run_episode(episode)
        assert outcome.ok
        assert outcome.result is not None


@pytest.fixture()
def affinity_blind_placer(monkeypatch):
    """Mutate placement to ignore GPU-generation affinity entirely."""
    original = DescendingPlacer.plan_for

    def blind(self, cluster, num_gpus, gpu_type=None, prefer=False):
        return original(self, cluster, num_gpus)

    monkeypatch.setattr(DescendingPlacer, "plan_for", blind)


def hetero_episode():
    """Two pinned 4-GPU jobs on a [v100, a100] cluster.

    Each machine hosts exactly one job, so an affinity-blind placer
    necessarily strands at least one pin on the wrong generation —
    the violation fires regardless of placement tie-breaking.
    """
    return EpisodeSpec(
        scheduler="fifo",
        num_machines=2,
        gpus_per_machine=4,
        gpu_types=["v100", "a100"],
        jobs=[
            JobSpecData(
                durations=(1.0, 2.0, 1.0, 0.5), num_gpus=4,
                gpu_affinity="a100", affinity_mode="pin",
            ),
            JobSpecData(
                durations=(0.5, 1.0, 2.0, 1.0), num_gpus=4,
                gpu_affinity="v100", affinity_mode="pin",
            ),
        ],
    )


class TestAffinityMutationIsCaught:
    def test_blind_placer_trips_the_invariant(self, affinity_blind_placer):
        outcome = run_episode(hetero_episode())
        assert not outcome.ok
        violation = outcome.violation
        assert violation.invariant == "placement_respects_affinity"
        assert "pinned to" in violation.message
        assert violation.details["pinned"] in ("v100", "a100")

    def test_repro_file_roundtrip_reproduces(
        self, affinity_blind_placer, tmp_path
    ):
        outcome = run_episode(hetero_episode())
        path = tmp_path / "affinity-blind.json"
        save_repro(path, hetero_episode(), outcome.violation)

        episode, recorded = load_repro(path)
        assert recorded["invariant"] == "placement_respects_affinity"
        replay = run_episode(episode)
        assert not replay.ok
        assert replay.violation.invariant == "placement_respects_affinity"

    def test_healthy_placer_passes_same_episode(self):
        outcome = run_episode(hetero_episode())
        assert outcome.ok
        assert outcome.result is not None
