"""Differential oracles: optimized grouping/matching vs the slow twins."""

import random

import pytest

from repro.matching.exact import brute_force_matching
from repro.verify.differential import (
    compare_cold_cached,
    compare_dense_sparse,
    compare_groups_exact,
    compare_pairs_exact,
    group_sets,
    jobs_from_rows,
)
from repro.verify.invariants import InvariantViolation


def random_rows(rng, n):
    rows = []
    for _ in range(n):
        row = [
            round(rng.uniform(0.1, 8.0), 3) if rng.random() > 0.2 else 0.0
            for _ in range(4)
        ]
        if not any(row):
            row[rng.randrange(4)] = 1.0
        rows.append(tuple(row))
    return rows


class TestPairsExact:
    def test_blossom_agrees_with_brute_force(self):
        rng = random.Random(1)
        for _ in range(20):
            n = rng.randint(2, 8)
            edges = [
                (u, v, round(rng.uniform(0.0, 1.0), 6))
                for u in range(n)
                for v in range(u + 1, n)
                if rng.random() < 0.7
            ]
            if not edges:
                continue
            weight = compare_pairs_exact(edges)
            assert weight == pytest.approx(brute_force_matching(edges)[1])

    def test_detects_a_bad_matcher(self, monkeypatch):
        # Force the "blossom" side to return an empty matching on a
        # graph whose optimum is positive: the oracle must object.
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential, "matching_pairs", lambda edges: []
        )
        with pytest.raises(InvariantViolation) as exc:
            compare_pairs_exact([(0, 1, 1.0)])
        assert exc.value.invariant == "differential.matching"


class TestDenseSparse:
    def test_small_inputs_identical(self):
        rng = random.Random(2)
        jobs = jobs_from_rows(random_rows(rng, 24))
        dense, sparse = compare_dense_sparse(jobs)
        assert group_sets(dense) == group_sets(sparse)

    @pytest.mark.parametrize("num_jobs", [127, 128, 129])
    def test_sparsify_threshold_boundary(self, num_jobs):
        # 127 stays on the dense path (must be bit-identical); 128 and
        # 129 cross onto the sparse candidate graph, where coverage
        # must match and efficiency may regress only boundedly.
        rng = random.Random(5)
        jobs = jobs_from_rows(random_rows(rng, num_jobs))
        dense, sparse = compare_dense_sparse(jobs, sparsify_threshold=128)
        if num_jobs < 128:
            assert group_sets(dense) == group_sets(sparse)

    def test_capacity_respected_on_both_sides(self):
        rng = random.Random(3)
        jobs = jobs_from_rows(random_rows(rng, 20))
        dense, sparse = compare_dense_sparse(jobs, capacity=8)
        assert dense.total_gpu_demand <= 8
        assert sparse.total_gpu_demand <= 8


class TestColdCached:
    def test_cache_never_changes_decisions(self):
        rng = random.Random(4)
        jobs = jobs_from_rows(random_rows(rng, 30))
        cold, cached = compare_cold_cached(jobs)
        assert group_sets(cold) == group_sets(cached)

    def test_quantized_durations_key_path(self):
        # cache_quantum > 0 exercises the quantized durations_key
        # lookups; served decisions must still be identical.
        rng = random.Random(6)
        jobs = jobs_from_rows(random_rows(rng, 30))
        cold, cached = compare_cold_cached(jobs, cache_quantum=0.05)
        assert group_sets(cold) == group_sets(cached)


class TestGroupsExact:
    def test_heuristic_within_bound_of_optimum(self):
        rng = random.Random(8)
        jobs = jobs_from_rows(random_rows(rng, 8))
        heuristic, exact = compare_groups_exact(jobs, min_fraction=0.5)
        assert heuristic <= exact + 1e-6

    def test_detects_an_unsound_heuristic(self, monkeypatch):
        # An "optimum" of zero with a positive heuristic total means
        # the oracle itself is broken; the soundness check must fire.
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential,
            "exact_hypergraph_matching",
            lambda n, size, weight: ((), 0.0),
        )
        rng = random.Random(9)
        jobs = jobs_from_rows(random_rows(rng, 8))
        with pytest.raises(InvariantViolation) as exc:
            compare_groups_exact(jobs)
        assert exc.value.invariant == "differential.optimality"
