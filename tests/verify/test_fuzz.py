"""Seeded fuzzing: determinism, shrinking, repro files, and the CLI."""

import json
import random

import pytest

from repro.cli import main
from repro.verify import (
    EpisodeSpec,
    FuzzConfig,
    InvariantViolation,
    load_repro,
    random_episode,
    run_episode,
    run_fuzz,
    save_repro,
    shrink_episode,
)
from repro.verify.repro_file import REPRO_FORMAT_VERSION, JobSpecData

from tests.verify.test_mutation import broken_episode, broken_scheduler  # noqa: F401


class TestEpisodeGeneration:
    def test_same_seed_same_episodes(self):
        a = [random_episode(random.Random(3), i) for i in range(10)]
        b = [random_episode(random.Random(3), i) for i in range(10)]
        # Episodes are plain dataclasses, so deep equality holds.
        assert a == b

    def test_different_seeds_differ(self):
        a = [random_episode(random.Random(0), i) for i in range(10)]
        b = [random_episode(random.Random(1), i) for i in range(10)]
        assert a != b

    def test_episodes_are_wellformed(self):
        rng = random.Random(12)
        for index in range(30):
            episode = random_episode(rng, index)
            assert 1 <= len(episode.jobs) <= 12
            total = episode.num_machines * episode.gpus_per_machine
            for job in episode.jobs:
                assert any(job.durations)
                assert job.num_gpus <= total
                assert job.num_iterations >= 1


class TestRunEpisode:
    def test_clean_episode(self):
        episode = EpisodeSpec(jobs=[
            JobSpecData(durations=(1.0, 2.0, 1.0, 0.5)),
            JobSpecData(durations=(0.5, 1.0, 2.0, 1.0)),
        ])
        outcome = run_episode(episode)
        assert outcome.ok
        assert outcome.result.num_jobs == 2
        assert outcome.checker.violations == []

    def test_episode_with_faults(self):
        episode = EpisodeSpec(
            fault_mtbf=120.0,
            fault_loss=0.5,
            jobs=[
                JobSpecData(durations=(1.0, 2.0, 1.0, 0.5),
                            num_iterations=50)
                for _ in range(4)
            ],
        )
        outcome = run_episode(episode)
        assert outcome.ok

    def test_replay_is_deterministic(self):
        rng = random.Random(21)
        episode = random_episode(rng, 0)
        first = run_episode(episode)
        second = run_episode(episode)
        assert first.ok == second.ok
        if first.ok:
            assert first.result.jcts == second.result.jcts


class TestShrinking:
    def test_shrunk_episode_keeps_invariant(self, broken_scheduler):  # noqa: F811
        episode = broken_episode()
        violation = run_episode(episode).violation
        assert violation is not None
        shrunk, shrunk_violation = shrink_episode(episode, violation)
        assert shrunk_violation.invariant == violation.invariant
        assert 1 <= len(shrunk.jobs) <= len(episode.jobs)
        # Double booking needs a multi-job group; on the 2-GPU cluster
        # two jobs run solo, so three jobs is the smallest reproducer.
        assert len(shrunk.jobs) <= 3
        assert run_episode(shrunk).violation.invariant == violation.invariant


class TestHeteroEpisodes:
    def test_hetero_generation_deterministic(self):
        a = [random_episode(random.Random(3), i, hetero=True)
             for i in range(10)]
        b = [random_episode(random.Random(3), i, hetero=True)
             for i in range(10)]
        assert a == b

    def test_hetero_episodes_are_wellformed(self):
        rng = random.Random(9)
        for index in range(30):
            episode = random_episode(rng, index, hetero=True)
            assert episode.gpu_types is not None
            assert len(episode.gpu_types) == episode.num_machines
            pools: dict = {}
            for name in episode.gpu_types:
                pools[name] = pools.get(name, 0) + episode.gpus_per_machine
            for job in episode.jobs:
                if job.gpu_affinity is None:
                    continue
                assert job.gpu_affinity in pools
                # Hard pins only when the pinned pool can host the
                # job; an infeasible pin would starve forever.
                if job.affinity_mode == "pin":
                    assert pools[job.gpu_affinity] >= job.num_gpus

    def test_hetero_episodes_run_clean(self):
        rng = random.Random(5)
        for index in range(8):
            episode = random_episode(rng, index, hetero=True)
            outcome = run_episode(episode)
            assert outcome.ok, outcome.violation

    def test_hetero_campaign_runs_clean(self, tmp_path):
        config = FuzzConfig(
            episodes=8, seed=1, out_dir=tmp_path / "out", hetero=True
        )
        report = run_fuzz(config)
        assert report.ok
        assert report.episodes_run == 8

    def test_from_dict_accepts_pre_hetero_payloads(self):
        # Repro files written before the heterogeneous arm carry no
        # gpu_types / gpu_affinity / affinity_mode keys.
        episode = EpisodeSpec.from_dict({
            "scheduler": "muri-s",
            "jobs": [{"durations": [1.0, 2.0, 1.0, 0.5]}],
        })
        assert episode.gpu_types is None
        assert episode.jobs[0].gpu_affinity is None
        assert episode.jobs[0].affinity_mode == "pin"


class TestReproFiles:
    def test_roundtrip(self, tmp_path):
        episode = EpisodeSpec(
            scheduler="muri-l",
            fault_mtbf=600.0,
            jobs=[JobSpecData(durations=(1.0, 0.0, 2.0, 0.5), num_gpus=2)],
            invariants=["gpu_capacity"],
        )
        violation = InvariantViolation(
            "gpu_capacity", "synthetic", 3.0, {"allocated": 9}
        )
        path = tmp_path / "x.json"
        save_repro(path, episode, violation)
        loaded, recorded = load_repro(path)
        assert loaded == episode
        assert recorded["invariant"] == "gpu_capacity"
        assert recorded["details"] == {"allocated": 9}

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "version": REPRO_FORMAT_VERSION + 1, "episode": {},
        }))
        with pytest.raises(ValueError, match="version"):
            load_repro(path)


class TestRunFuzz:
    def test_seeded_campaign_runs_clean(self, tmp_path):
        config = FuzzConfig(episodes=12, seed=0, out_dir=tmp_path / "out")
        report = run_fuzz(config)
        assert report.ok
        assert report.episodes_run == 12
        assert not (tmp_path / "out").exists()

    def test_failures_write_repro_files(self, broken_scheduler,  # noqa: F811
                                        tmp_path, monkeypatch):
        import repro.verify.fuzz as fuzz_module

        monkeypatch.setattr(
            fuzz_module, "_SCHEDULER_POOL", (broken_scheduler,)
        )
        config = FuzzConfig(
            episodes=6, seed=0, out_dir=tmp_path / "failures"
        )
        report = run_fuzz(config)
        assert not report.ok
        for path, violation in report.failures:
            assert path.exists()
            episode, recorded = load_repro(path)
            assert recorded["invariant"] == violation.invariant
            replay = run_episode(episode)
            assert not replay.ok
            assert replay.violation.invariant == violation.invariant


class TestCli:
    def test_fuzz_command_clean(self, capsys, tmp_path):
        code = main([
            "fuzz", "--episodes", "5", "--seed", "0",
            "--out-dir", str(tmp_path / "out"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "5 episodes" in out
        assert "0 violation" in out

    def test_fuzz_command_hetero_flag(self, capsys, tmp_path):
        code = main([
            "fuzz", "--episodes", "4", "--seed", "7", "--hetero",
            "--out-dir", str(tmp_path / "out"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation" in out

    def test_fuzz_command_reports_failures(self, capsys, tmp_path,
                                           broken_scheduler,  # noqa: F811
                                           monkeypatch):
        import repro.verify.fuzz as fuzz_module

        monkeypatch.setattr(
            fuzz_module, "_SCHEDULER_POOL", (broken_scheduler,)
        )
        code = main([
            "fuzz", "--episodes", "6", "--seed", "0",
            "--out-dir", str(tmp_path / "failures"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "exclusive_membership" in out

    def test_fuzz_replay(self, capsys, tmp_path, broken_scheduler):  # noqa: F811
        outcome = run_episode(broken_episode())
        path = tmp_path / "repro.json"
        save_repro(path, broken_episode(), outcome.violation)

        code = main(["fuzz", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "reproduced" in out

    def test_fuzz_replay_of_fixed_bug(self, capsys, tmp_path):
        episode = EpisodeSpec(jobs=[JobSpecData(durations=(1.0, 1.0, 1.0, 1.0))])
        violation = InvariantViolation("gpu_capacity", "was broken once")
        path = tmp_path / "fixed.json"
        save_repro(path, episode, violation)

        code = main(["fuzz", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fixed" in out

    def test_fuzz_unknown_invariant_errors(self, capsys, tmp_path):
        code = main([
            "fuzz", "--episodes", "1", "--invariants", "bogus",
            "--out-dir", str(tmp_path / "out"),
        ])
        err = capsys.readouterr().err
        assert code != 0
        assert "unknown invariants" in err
