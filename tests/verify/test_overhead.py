"""The armed-checker overhead contract.

Invariant checking is opt-in, and arming every check must stay cheap
enough to leave on during development runs: the acceptance target is a
few percent on a 200-job simulation.  As in
``tests/observe/test_overhead.py``, wall-clock assertions are
noise-prone in CI, so the enforced bound is looser than the target and
each configuration takes the best of three runs.
"""

import time

from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs
from repro.verify import InvariantChecker


def build_specs(num_jobs=200):
    trace = generate_trace("1", num_jobs=num_jobs, seed=11, at_time_zero=True)
    return [s for s in build_jobs(trace, seed=11) if s.num_gpus <= 16]


def run_once(specs, tracer):
    simulator = ClusterSimulator(
        make_scheduler("muri-s", tracer=tracer),
        cluster=Cluster(2, 8),
        tracer=tracer,
    )
    return simulator.run(specs, "verify-overhead")


class TestArmedCheckerOverhead:
    def test_armed_checker_wall_time(self):
        specs = build_specs(200)

        def best_of(tracer_factory, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run_once(specs, tracer_factory())
                best = min(best, time.perf_counter() - start)
            return best

        baseline = best_of(lambda: None)
        armed = best_of(InvariantChecker)
        assert armed <= baseline * 1.25 + 0.05, (
            f"armed invariant checker too slow: {armed:.3f}s vs "
            f"baseline {baseline:.3f}s"
        )

    def test_armed_run_is_clean_and_lean(self):
        specs = build_specs(60)
        checker = InvariantChecker()
        result = run_once(specs, checker)
        assert result.num_jobs > 0
        assert checker.violations == []
        # Default mode checks and drops: no stored events or counters.
        assert len(checker) == 0
        assert checker.counters == {}
        # Grouping/outcome provenance IS collected (violations need it).
        assert len(checker.provenance) > 0
