"""Shared test configuration: Hypothesis profiles for dev and CI.

Property tests must be reproducible in CI: the ``ci`` profile pins the
example database off (no cross-run state), derandomizes generation so
a red build replays locally from the printed seed, and disables the
per-example deadline (shared CI runners have wild timing variance).
The ``dev`` profile keeps default randomized exploration for local
runs.  Selection: ``HYPOTHESIS_PROFILE`` env var wins, else the ``CI``
env var (set by GitHub Actions) picks ``ci``, else ``dev``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    database=None,
    suppress_health_check=(HealthCheck.too_slow,),
    print_blob=True,
)

settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)
