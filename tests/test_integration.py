"""End-to-end integration tests: the paper's headline claims in miniature.

These run full scheduler-vs-scheduler simulations on small but
congested workloads and assert the qualitative outcomes the paper
reports.  They are the repository's regression net for "does Muri
still win where it should".
"""

import pytest

from repro.analysis.experiments import run_schedulers
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs


@pytest.fixture(scope="module")
def congested_results():
    """One congested trace, every scheduler, shared across tests."""
    trace = generate_trace("1", num_jobs=200, seed=1, at_time_zero=True)
    specs = build_jobs(trace, seed=1)
    schedulers = {
        name: make_scheduler(name)
        for name in ("srtf", "srsf", "muri-s", "tiresias", "themis",
                     "antman", "muri-l")
    }
    return run_schedulers(specs, schedulers, trace.name,
                          cluster_factory=lambda: Cluster(4, 8))


def test_all_jobs_complete_everywhere(congested_results):
    counts = {name: r.num_jobs for name, r in congested_results.items()}
    assert len(set(counts.values())) == 1


def test_muri_l_beats_tiresias_on_jct(congested_results):
    speedup = congested_results["muri-l"].speedup_over(
        congested_results["tiresias"]
    )
    assert speedup["avg_jct"] > 1.2


def test_muri_l_beats_antman(congested_results):
    speedup = congested_results["muri-l"].speedup_over(
        congested_results["antman"]
    )
    assert speedup["avg_jct"] > 1.5
    assert speedup["makespan"] > 1.0


def test_muri_improves_makespan_over_exclusive_baselines(congested_results):
    for muri, baseline in (("muri-s", "srsf"), ("muri-s", "srtf"),
                           ("muri-l", "tiresias")):
        speedup = congested_results[muri].speedup_over(
            congested_results[baseline]
        )
        assert speedup["makespan"] > 1.0, (muri, baseline)


def test_muri_s_at_least_matches_srtf(congested_results):
    speedup = congested_results["muri-s"].speedup_over(
        congested_results["srtf"]
    )
    assert speedup["avg_jct"] > 0.95


def test_antman_jct_suffers_from_fifo(congested_results):
    """AntMan is non-preemptive FIFO: its average JCT trails the
    preemptive duration-aware baselines (the paper's explanation for
    its poor JCT column)."""
    assert (
        congested_results["antman"].avg_jct
        > congested_results["srsf"].avg_jct
    )


def test_muri_runs_more_jobs_concurrently(congested_results):
    def mean_running(result):
        total = sum(p.span for p in result.timeseries)
        return sum(p.running_jobs * p.span for p in result.timeseries) / total

    assert mean_running(congested_results["muri-l"]) > mean_running(
        congested_results["tiresias"]
    )


def test_muri_queue_is_shorter(congested_results):
    assert (
        congested_results["muri-l"].avg_queue_length
        < congested_results["tiresias"].avg_queue_length
    )


def test_light_load_parity():
    """Trace 3 (lightly loaded): Muri degenerates to the baseline and
    neither wins big — the paper's trace-3 observation."""
    trace = generate_trace("3", num_jobs=120, seed=3)
    specs = build_jobs(trace, seed=3)
    results = run_schedulers(
        specs,
        {"srsf": make_scheduler("srsf"), "muri-s": make_scheduler("muri-s")},
        trace.name,
    )
    speedup = results["muri-s"].speedup_over(results["srsf"])
    assert 0.9 <= speedup["avg_jct"] <= 1.3
    assert 0.9 <= speedup["makespan"] <= 1.3


def test_prime_traces_raise_makespan_speedup():
    """Setting all submissions to t=0 increases contention and thus
    Muri's makespan speedup (the paper's 'impact of load')."""
    def makespan_speedup(at_zero):
        trace = generate_trace("1", num_jobs=150, seed=2, at_time_zero=at_zero)
        specs = build_jobs(trace, seed=2)
        results = run_schedulers(
            specs,
            {"tiresias": make_scheduler("tiresias"),
             "muri-l": make_scheduler("muri-l")},
            trace.name,
        )
        return results["muri-l"].speedup_over(results["tiresias"])["makespan"]

    assert makespan_speedup(True) >= makespan_speedup(False) - 0.15


def test_profiling_noise_degrades_gracefully():
    from repro.core.muri import MuriScheduler
    from repro.profiler.noise import UniformNoise
    from repro.profiler.profiler import ResourceProfiler
    from repro.sim.simulator import ClusterSimulator

    trace = generate_trace("1", num_jobs=120, seed=4, at_time_zero=True)
    specs = build_jobs(trace, seed=4)

    def run_with_noise(level):
        profiler = ResourceProfiler(
            noise=UniformNoise(level), num_dry_runs=1, seed=0,
            cache_by_model=False,
        )
        simulator = ClusterSimulator(
            MuriScheduler(policy="las2d", profiler=profiler),
            cluster=Cluster(4, 8),
        )
        return simulator.run(specs, trace.name).avg_jct

    clean = run_with_noise(0.0)
    noisy = run_with_noise(1.0)
    # Full noise hurts, but not catastrophically (<2x in the paper's
    # Fig. 14 spirit).
    assert noisy >= clean * 0.98
    assert noisy <= clean * 2.0


def test_naive_gpu_sharing_can_degrade_jct():
    """Section 2.1's motivating example: two identical jobs contending
    on the same non-GPU resource run at half speed when shared, making
    shared average JCT (2 units) worse than FIFO's (1.5 units)."""
    from repro.jobs.job import JobSpec
    from repro.jobs.stage import StageProfile
    from repro.schedulers.antman import AntManScheduler
    from repro.schedulers.classic import FifoScheduler
    from repro.sim.contention import IDEAL_CONTENTION
    from repro.sim.simulator import ClusterSimulator

    # Storage-bound jobs: sharing serializes their dominant stage.
    profile = StageProfile((0.9, 0.0, 0.1, 0.0))
    cluster = lambda: Cluster(1, 1)

    def run(scheduler):
        specs = [JobSpec(profile=profile, num_iterations=500)
                 for _ in range(2)]
        return ClusterSimulator(
            scheduler, cluster=cluster(),
            scheduling_interval=10.0, restart_penalty=0.0,
            contention=IDEAL_CONTENTION, uncoordinated_penalty=1.0,
            backfill_on_completion=True,
        ).run(specs, "degrade")

    fifo = run(FifoScheduler())
    shared = run(AntManScheduler())
    # FIFO: one job at 500 s, the other at 1000 s -> avg 750 s.
    assert fifo.avg_jct == pytest.approx(750.0, rel=0.05)
    # Naive sharing: both at ~1000 s -> avg ~1000 s, strictly worse.
    assert shared.avg_jct > fifo.avg_jct * 1.2


def test_muri_does_not_group_contending_jobs_when_avoidable():
    """Muri's matching assigns low weight to same-bottleneck pairs, so
    with a complementary partner available it never picks the
    degenerate pairing of the section 2.1 example."""
    from repro.core.grouping import MultiRoundGrouper
    from repro.jobs.job import Job, JobSpec
    from repro.jobs.stage import StageProfile

    storage = StageProfile((0.9, 0.0, 0.1, 0.0))
    gpu = StageProfile((0.1, 0.0, 0.9, 0.0))
    jobs = [Job(JobSpec(profile=p, num_iterations=10))
            for p in (storage, storage, gpu, gpu)]
    result = MultiRoundGrouper(max_group_size=2).group(jobs, capacity=2)
    for group in result.groups:
        bottlenecks = {job.profile.bottleneck for job in group.jobs}
        assert len(bottlenecks) == group.size  # always mixed pairs
