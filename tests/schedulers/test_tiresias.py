"""Tests for the Tiresias (2D-LAS / Gittins) scheduler."""

import pytest

from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.tiresias import TiresiasScheduler

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_job(iters=10_000, gpus=1, submit=0.0):
    return Job(JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


def test_validation():
    with pytest.raises(ValueError):
        TiresiasScheduler(num_queues=0)
    with pytest.raises(ValueError):
        TiresiasScheduler(variant="magic")


def test_names():
    assert TiresiasScheduler().name == "Tiresias"
    assert TiresiasScheduler(variant="gittins").name == "Tiresias-Gittins"
    assert not TiresiasScheduler().duration_aware


def test_fresh_jobs_outrank_veterans():
    fresh = make_job(submit=100.0)
    veteran = make_job(submit=0.0)
    veteran.advance(0.0, 5000.0 * 1)  # attained GPU service beyond queue 0
    scheduler = TiresiasScheduler(base_quantum=3600.0)
    plan = scheduler.decide(6000.0, [veteran, fresh], {}, total_gpus=1)
    assert plan[0].jobs[0] is fresh


def test_queue_discretization_keeps_fifo_within_queue():
    # Both in queue 0 (little attained service): FIFO by submission.
    a = make_job(submit=0.0)
    b = make_job(submit=10.0)
    a.advance(0.0, 100.0)
    b.advance(0.0, 50.0)
    plan = TiresiasScheduler().decide(200.0, [b, a], {}, total_gpus=1)
    assert plan[0].jobs[0] is a


def test_attained_service_uses_gpu_dimension():
    # 2D: wide jobs accumulate service faster.
    narrow = make_job(gpus=1, submit=0.0)
    wide = make_job(gpus=8, submit=0.0)
    narrow.advance(0.0, 1000.0)
    wide.advance(0.0, 1000.0)  # 8000 GPU-seconds: beyond queue 0
    scheduler = TiresiasScheduler(base_quantum=3600.0, starvation_knob=0.0)
    plan = scheduler.decide(2000.0, [wide, narrow], {}, total_gpus=1)
    assert plan[0].jobs[0] is narrow


def test_starvation_promotion():
    # A long-pending veteran is promoted back to queue 0.
    veteran = make_job(submit=0.0)
    veteran.advance(0.0, 4000.0)  # queue 1 territory
    fresh = make_job(submit=99_000.0)
    scheduler = TiresiasScheduler(starvation_knob=2.0)
    # veteran has been pending ~96000 s >> 2 x 4000 s attained.
    plan = scheduler.decide(100_000.0, [fresh, veteran], {}, total_gpus=1)
    assert plan[0].jobs[0] is veteran


def test_gittins_prefers_more_attained_within_queue():
    scheduler = TiresiasScheduler(variant="gittins", base_quantum=3600.0)
    a = make_job(submit=0.0)
    b = make_job(submit=0.0)
    a.advance(0.0, 100.0)
    b.advance(0.0, 1000.0)
    plan = scheduler.decide(2000.0, [a, b], {}, total_gpus=1)
    assert plan[0].jobs[0] is b
