"""Tests for the scheduler registry."""

import pytest

from repro.core.muri import MuriScheduler
from repro.observe import Tracer
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.classic import FifoScheduler
from repro.schedulers.registry import (
    KNOWN_DURATION,
    SCHEDULERS,
    UNKNOWN_DURATION,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)


def test_all_names_buildable():
    for name in SCHEDULERS:
        scheduler = make_scheduler(name)
        assert scheduler.name


def test_case_insensitive():
    assert make_scheduler("SRTF").name == "SRTF"
    assert make_scheduler("Muri-S").name == "Muri-S"


def test_unknown_name():
    with pytest.raises(KeyError):
        make_scheduler("slurm")


def test_muri_variants():
    muri_s = make_scheduler("muri-s")
    muri_l = make_scheduler("muri-l")
    assert isinstance(muri_s, MuriScheduler)
    assert muri_s.duration_aware
    assert not muri_l.duration_aware


def test_muri_kwargs_forwarded():
    scheduler = make_scheduler("muri-l", max_group_size=2, matcher="greedy")
    assert scheduler.max_group_size == 2
    assert scheduler.grouper.matcher == "greedy"


def test_muri_profiler_forwarded():
    profiler = ResourceProfiler()
    scheduler = make_scheduler("muri-s", profiler=profiler)
    assert scheduler.profiler is profiler


def test_baseline_sets_match_paper():
    assert set(KNOWN_DURATION) == {"srtf", "srsf", "muri-s"}
    assert set(UNKNOWN_DURATION) == {"tiresias", "themis", "antman", "muri-l"}


def test_duration_awareness_consistent_with_sets():
    for name in KNOWN_DURATION:
        assert make_scheduler(name).duration_aware
    for name in UNKNOWN_DURATION:
        assert not make_scheduler(name).duration_aware


def test_available_schedulers_sorted_and_complete():
    names = available_schedulers()
    assert names == sorted(names)
    assert {"fifo", "srsf", "muri-s", "muri-l"} <= set(names)


def test_make_scheduler_forwards_tracer_to_muri():
    tracer = Tracer()
    scheduler = make_scheduler("muri-s", tracer=tracer)
    assert scheduler.tracer is tracer
    assert scheduler.grouper.tracer is tracer


def test_make_scheduler_attaches_tracer_to_registered_factory():
    # A registered factory takes no tracer argument, yet the built
    # scheduler (and its grouper) still get one attached when the
    # instances expose a ``tracer`` attribute.
    register_scheduler("test-muri", lambda: MuriScheduler(policy="srsf"))
    try:
        tracer = Tracer()
        scheduler = make_scheduler("test-muri", tracer=tracer)
        assert scheduler.tracer is tracer
        assert scheduler.grouper.tracer is tracer
    finally:
        dict.pop(SCHEDULERS, "test-muri")


def test_make_scheduler_configures_tracer_on_baselines():
    # Every scheduler shares the uniform configure() surface now, so
    # baselines carry the tracer too (their decide() just never emits).
    tracer = Tracer()
    scheduler = make_scheduler("fifo", tracer=tracer)
    assert scheduler.tracer is tracer


def test_configure_uniform_signature():
    # The one factory signature: unknown-to-the-policy options are
    # accepted and ignored instead of raising.
    scheduler = make_scheduler("fifo", event_regroup=True, workers=4)
    assert scheduler.name == "FIFO"
    muri = make_scheduler("muri-s", event_regroup=True, workers=3)
    assert muri.event_regroup is True
    assert muri.grouper.workers == 3


def test_configure_returns_self_and_chains():
    scheduler = make_scheduler("muri-l")
    tracer = Tracer()
    assert scheduler.configure(tracer=tracer) is scheduler
    assert scheduler.grouper.tracer is tracer


def test_register_scheduler():
    register_scheduler("test-fifo", FifoScheduler)
    try:
        assert "test-fifo" in available_schedulers()
        assert isinstance(make_scheduler("Test-FIFO"), FifoScheduler)
    finally:
        dict.pop(SCHEDULERS, "test-fifo")


def test_register_scheduler_rejects_collision():
    with pytest.raises(ValueError):
        register_scheduler("fifo", FifoScheduler)


def test_register_scheduler_replace():
    original = SCHEDULERS.get("fifo")
    register_scheduler("fifo", FifoScheduler, replace=True)
    try:
        assert SCHEDULERS.get("fifo") is FifoScheduler
    finally:
        dict.__setitem__(SCHEDULERS, "fifo", original)


def test_direct_indexing_is_deprecated():
    with pytest.warns(DeprecationWarning):
        factory = SCHEDULERS["srsf"]
    assert factory().name == "SRSF"


def test_non_indexing_access_does_not_warn(recwarn):
    assert "srsf" in SCHEDULERS
    assert SCHEDULERS.get("srsf") is not None
    assert list(SCHEDULERS)
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert not deprecations
