"""Tests for the scheduler registry."""

import pytest

from repro.core.muri import MuriScheduler
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.registry import (
    KNOWN_DURATION,
    SCHEDULERS,
    UNKNOWN_DURATION,
    make_scheduler,
)


def test_all_names_buildable():
    for name in SCHEDULERS:
        scheduler = make_scheduler(name)
        assert scheduler.name


def test_case_insensitive():
    assert make_scheduler("SRTF").name == "SRTF"
    assert make_scheduler("Muri-S").name == "Muri-S"


def test_unknown_name():
    with pytest.raises(KeyError):
        make_scheduler("slurm")


def test_muri_variants():
    muri_s = make_scheduler("muri-s")
    muri_l = make_scheduler("muri-l")
    assert isinstance(muri_s, MuriScheduler)
    assert muri_s.duration_aware
    assert not muri_l.duration_aware


def test_muri_kwargs_forwarded():
    scheduler = make_scheduler("muri-l", max_group_size=2, matcher="greedy")
    assert scheduler.max_group_size == 2
    assert scheduler.grouper.matcher == "greedy"


def test_muri_profiler_forwarded():
    profiler = ResourceProfiler()
    scheduler = make_scheduler("muri-s", profiler=profiler)
    assert scheduler.profiler is profiler


def test_baseline_sets_match_paper():
    assert set(KNOWN_DURATION) == {"srtf", "srsf", "muri-s"}
    assert set(UNKNOWN_DURATION) == {"tiresias", "themis", "antman", "muri-l"}


def test_duration_awareness_consistent_with_sets():
    for name in KNOWN_DURATION:
        assert make_scheduler(name).duration_aware
    for name in UNKNOWN_DURATION:
        assert not make_scheduler(name).duration_aware
