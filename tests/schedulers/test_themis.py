"""Tests for the Themis finish-time-fairness scheduler."""

import pytest

from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.themis import ThemisScheduler

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_job(iters=1000, gpus=1, submit=0.0):
    return Job(JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


def test_validation():
    with pytest.raises(ValueError):
        ThemisScheduler(fairness_knob=1.0)
    with pytest.raises(ValueError):
        ThemisScheduler(fairness_knob=-0.1)


def test_rho_grows_while_waiting():
    scheduler = ThemisScheduler()
    job = make_job(submit=0.0)
    early = scheduler.finish_time_fairness(job, 10.0)
    late = scheduler.finish_time_fairness(job, 10_000.0)
    assert late > early


def test_rho_is_one_for_ideal_run():
    scheduler = ThemisScheduler()
    job = make_job(iters=100, submit=0.0)
    job.advance(50.0, 50.0)
    # Running continuously since submission: rho = 1.
    assert scheduler.finish_time_fairness(job, 50.0) == pytest.approx(1.0)


def test_most_unfair_job_first():
    scheduler = ThemisScheduler(fairness_knob=0.0)
    waiting = make_job(iters=100, submit=0.0)   # waited 1000 s
    recent = make_job(iters=100, submit=990.0)  # waited 10 s
    plan = scheduler.decide(1000.0, [recent, waiting], {}, total_gpus=1)
    assert plan[0].jobs[0] is waiting


def test_fairness_knob_hides_tail():
    scheduler = ThemisScheduler(fairness_knob=0.5)
    jobs = [make_job(submit=float(i)) for i in range(10)]
    plan = scheduler.decide(1000.0, jobs, {}, total_gpus=100)
    # Only the worst half is eligible this round.
    assert len(plan) == 5


def test_duration_unaware():
    assert not ThemisScheduler().duration_aware
