"""Tests for the AntMan scheduler model."""

import pytest

from repro.core.group import JobGroup
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.antman import AntManScheduler
from repro.schedulers.base import group_key

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_job(iters=100, gpus=1, submit=0.0):
    return Job(JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


def test_validation():
    with pytest.raises(ValueError):
        AntManScheduler(max_sharing=0)


def test_identity():
    scheduler = AntManScheduler()
    assert scheduler.name == "AntMan"
    assert not scheduler.preemptive
    assert not scheduler.duration_aware


def test_dedicated_until_full():
    jobs = [make_job() for _ in range(2)]
    plan = AntManScheduler().decide(0.0, jobs, {}, total_gpus=4)
    assert all(group.size == 1 for group in plan)
    assert len(plan) == 2


def test_shares_when_full():
    jobs = [make_job(submit=float(i)) for i in range(3)]
    plan = AntManScheduler().decide(0.0, jobs, {}, total_gpus=2)
    sizes = sorted(group.size for group in plan)
    assert sizes == [1, 2]


def test_sharing_groups_are_uncoordinated():
    jobs = [make_job(submit=float(i)) for i in range(3)]
    plan = AntManScheduler().decide(0.0, jobs, {}, total_gpus=2)
    shared = next(group for group in plan if group.size == 2)
    assert not shared.coordinated


def test_sharing_cap():
    jobs = [make_job(submit=float(i)) for i in range(5)]
    plan = AntManScheduler(max_sharing=2).decide(0.0, jobs, {}, total_gpus=2)
    assert all(group.size <= 2 for group in plan)
    scheduled = sum(group.size for group in plan)
    assert scheduled == 4  # fifth job blocked by the cap


def test_fifo_blocking_on_gpu_mismatch():
    first = make_job(gpus=1, submit=0.0)
    blocked = make_job(gpus=2, submit=1.0)
    later = make_job(gpus=1, submit=2.0)
    plan = AntManScheduler().decide(0.0, [first, blocked, later], {}, total_gpus=1)
    # The 2-GPU job cannot share a 1-GPU host and blocks the queue.
    scheduled = [job.job_id for group in plan for job in group.jobs]
    assert first.job_id in scheduled
    assert blocked.job_id not in scheduled
    assert later.job_id not in scheduled


def test_running_job_keeps_its_slot():
    running_job = make_job(submit=0.0)
    running_job.mark_started(0.0)
    group = JobGroup.solo(running_job)
    running = {group_key(group): group}
    newcomer = make_job(iters=1, submit=1.0)
    plan = AntManScheduler().decide(10.0, [running_job, newcomer], running,
                                    total_gpus=1)
    # The newcomer may opportunistically share the running job's GPU,
    # but the running job itself is never evicted from the plan.
    scheduled = [job.job_id for g in plan for job in g.jobs]
    assert running_job.job_id in scheduled
    assert sum(g.num_gpus for g in plan) <= 1


def test_full_group_not_extended():
    a, b = make_job(submit=0.0), make_job(submit=1.0)
    a.mark_started(0.0)
    b.mark_started(0.0)
    scheduler = AntManScheduler(max_sharing=2)
    shared = scheduler._pack([a, b])
    running = {group_key(shared): shared}
    extra = make_job(submit=2.0)
    plan = scheduler.decide(10.0, [a, b, extra], running, total_gpus=1)
    assert all(group.size <= 2 for group in plan)
    scheduled = [job.job_id for g in plan for job in g.jobs]
    assert extra.job_id not in scheduled
