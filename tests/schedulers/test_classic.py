"""Tests for the classic priority schedulers."""

import pytest

from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.base import fill_singletons, group_key
from repro.schedulers.classic import (
    FifoScheduler,
    PriorityScheduler,
    SjfScheduler,
    SrsfScheduler,
    SrtfScheduler,
)
from repro.core.group import JobGroup

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_job(iters=100, gpus=1, submit=0.0):
    return Job(JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


class TestFillSingletons:
    def test_fills_in_order(self):
        jobs = [make_job(gpus=2), make_job(gpus=2)]
        groups = fill_singletons(jobs, total_gpus=4)
        assert len(groups) == 2

    def test_backfills_past_big_job(self):
        jobs = [make_job(gpus=8), make_job(gpus=2)]
        groups = fill_singletons(jobs, total_gpus=4)
        assert len(groups) == 1
        assert groups[0].jobs[0] is jobs[1]

    def test_strict_blocks_at_head(self):
        jobs = [make_job(gpus=8), make_job(gpus=2)]
        assert fill_singletons(jobs, total_gpus=4, strict=True) == []

    def test_stops_when_full(self):
        jobs = [make_job(gpus=2), make_job(gpus=2), make_job(gpus=2)]
        groups = fill_singletons(jobs, total_gpus=4)
        assert len(groups) == 2


class TestPriorityScheduler:
    def test_accepts_policy_name(self):
        scheduler = PriorityScheduler("srtf", name="X", duration_aware=True)
        assert callable(scheduler.policy)

    def test_orders_by_policy(self):
        short, long_ = make_job(iters=10), make_job(iters=1000)
        scheduler = SrtfScheduler()
        plan = scheduler.decide(0.0, [long_, short], {}, total_gpus=1)
        assert plan[0].jobs[0] is short

    def test_tie_break_by_submission(self):
        early = make_job(iters=10, submit=0.0)
        late = make_job(iters=10, submit=5.0)
        plan = SrtfScheduler().decide(10.0, [late, early], {}, total_gpus=1)
        assert plan[0].jobs[0] is early


class TestSchedulerIdentities:
    def test_names_and_awareness(self):
        assert FifoScheduler().name == "FIFO"
        assert not FifoScheduler().duration_aware
        assert not FifoScheduler().preemptive
        assert SjfScheduler().duration_aware
        assert SrtfScheduler().duration_aware
        assert SrsfScheduler().duration_aware
        assert SrsfScheduler().preemptive


class TestSrsf:
    def test_weights_by_gpus(self):
        # 10-iteration 8-GPU job is "bigger" than 50-iteration 1-GPU job.
        wide = make_job(iters=10, gpus=8)
        narrow = make_job(iters=50, gpus=1)
        plan = SrsfScheduler().decide(0.0, [wide, narrow], {}, total_gpus=8)
        assert plan[0].jobs[0] is narrow

    def test_srtf_ignores_gpus(self):
        wide = make_job(iters=10, gpus=8)
        narrow = make_job(iters=50, gpus=1)
        plan = SrtfScheduler().decide(0.0, [wide, narrow], {}, total_gpus=8)
        assert plan[0].jobs[0] is wide


class TestFifoNonPreemption:
    def test_keeps_running_jobs(self):
        running_job = make_job(iters=1000, submit=0.0)
        running_job.mark_started(0.0)
        newcomer = make_job(iters=1, submit=1.0)
        group = JobGroup.solo(running_job)
        plan = FifoScheduler().decide(
            10.0, [running_job, newcomer], {group_key(group): group}, total_gpus=1
        )
        scheduled = [job.job_id for g in plan for job in g.jobs]
        assert scheduled == [running_job.job_id]

    def test_head_of_line_blocking(self):
        big = make_job(iters=10, gpus=4, submit=0.0)
        small = make_job(iters=10, gpus=1, submit=1.0)
        plan = FifoScheduler().decide(0.0, [big, small], {}, total_gpus=2)
        assert plan == []
