"""Tests for the DRF fairness baseline."""

import pytest

from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.drf import DrfScheduler, dominant_share

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))
GPU_HEAVY = StageProfile((0.05, 0.05, 0.85, 0.05))


def make_job(iters=1000, gpus=1, submit=0.0, profile=UNIT):
    return Job(JobSpec(profile=profile, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


class TestDominantShare:
    def test_gpu_dominates_for_dl_jobs(self):
        job = make_job(profile=GPU_HEAVY, gpus=4)
        capacity = [64.0, 64.0, 64.0, 64.0]
        share = dominant_share(job, capacity)
        assert share == pytest.approx(0.85 * 4 / 64.0)

    def test_scales_with_gpus(self):
        capacity = [64.0] * 4
        narrow = dominant_share(make_job(gpus=1), capacity)
        wide = dominant_share(make_job(gpus=8), capacity)
        assert wide == pytest.approx(8 * narrow)

    def test_zero_capacity_skipped(self):
        assert dominant_share(make_job(), [0.0, 0.0, 0.0, 0.0]) == 0.0


class TestDrfScheduling:
    def test_least_served_first(self):
        served = make_job(submit=0.0)
        served.advance(0.0, 1000.0)
        starved = make_job(submit=0.0)
        plan = DrfScheduler().decide(2000.0, [served, starved], {}, total_gpus=1)
        assert plan[0].jobs[0] is starved

    def test_normalizes_by_width(self):
        # A wide job that received proportional service is not ranked
        # behind a narrow one with the same per-GPU attainment.
        wide = make_job(gpus=4, submit=0.0)
        wide.advance(0.0, 100.0)     # 400 GPU-seconds over 4 GPUs
        narrow = make_job(gpus=1, submit=0.0)
        narrow.advance(0.0, 100.0)   # 100 GPU-seconds over 1 GPU
        scheduler = DrfScheduler()
        plan = scheduler.decide(1000.0, [wide, narrow], {}, total_gpus=8)
        assert len(plan) == 2  # both fit; no starvation judgement needed

    def test_capacity_respected(self):
        jobs = [make_job(gpus=4) for _ in range(5)]
        plan = DrfScheduler().decide(0.0, jobs, {}, total_gpus=8)
        assert sum(group.num_gpus for group in plan) <= 8

    def test_equalizes_service_over_time(self):
        """End to end: two equal jobs on one GPU end with similar
        attained service under DRF's alternation."""
        from repro.cluster.cluster import Cluster
        from repro.sim.contention import IDEAL_CONTENTION
        from repro.sim.simulator import ClusterSimulator

        a = JobSpec(profile=UNIT, num_iterations=400)
        b = JobSpec(profile=UNIT, num_iterations=400)
        result = ClusterSimulator(
            DrfScheduler(),
            cluster=Cluster(1, 1),
            scheduling_interval=50.0,
            restart_penalty=0.0,
            contention=IDEAL_CONTENTION,
        ).run([a, b], "drf")
        finishes = sorted(result.finish_times.values())
        # Fair alternation: both finish near the end, close together
        # (FIFO would finish one at 400 and the other at ~800).
        assert finishes[1] - finishes[0] <= 100.0
        assert finishes[0] >= 700.0

    def test_registry(self):
        from repro.schedulers.registry import make_scheduler

        assert make_scheduler("drf").name == "DRF"
