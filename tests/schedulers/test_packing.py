"""Tests for the Tetris-style space-packing baseline."""

import pytest

from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.packing import TetrisScheduler, peak_demand_vector

STORAGE = StageProfile((0.7, 0.1, 0.1, 0.1))
GPU_ONLY = StageProfile((0.0, 0.0, 1.0, 0.0))
HALF_GPU = StageProfile((0.0, 0.0, 0.5, 0.0))


def make_job(profile=STORAGE, gpus=1, iters=100, submit=0.0):
    return Job(JobSpec(profile=profile, num_gpus=gpus, num_iterations=iters,
                       submit_time=submit))


class TestPeakDemand:
    def test_all_used_resources_peak_at_one(self):
        job = make_job(STORAGE)
        assert peak_demand_vector(job) == (1.0, 1.0, 1.0, 1.0)

    def test_unused_resources_are_zero(self):
        job = make_job(GPU_ONLY)
        assert peak_demand_vector(job) == (0.0, 0.0, 1.0, 0.0)


class TestDegeneration:
    def test_peak_packing_cannot_colocate_staged_jobs(self):
        """The paper's claim: peak demands make DL jobs unpackable, so
        Tetris degenerates to exclusive scheduling."""
        jobs = [make_job(STORAGE), make_job(GPU_ONLY), make_job(STORAGE)]
        plan = TetrisScheduler().decide(0.0, jobs, {}, total_gpus=2)
        assert all(group.size == 1 for group in plan)
        assert len(plan) == 2  # capacity-bound, jobs run exclusively

    def test_disjoint_single_resource_jobs_can_pack(self):
        """Jobs that genuinely never touch the same resource do pack —
        the regime big-data schedulers were designed for."""
        gpu_job = make_job(GPU_ONLY)
        storage_job = make_job(StageProfile((1.0, 0.0, 0.0, 0.0)))
        plan = TetrisScheduler().decide(0.0, [gpu_job, storage_job], {},
                                        total_gpus=1)
        assert len(plan) == 1
        assert plan[0].size == 2
        assert not plan[0].coordinated

    def test_orders_by_remaining_service(self):
        short = make_job(iters=10)
        long_ = make_job(iters=1000)
        plan = TetrisScheduler().decide(0.0, [long_, short], {}, total_gpus=1)
        assert plan[0].jobs[0] is short


class TestAverageVariant:
    def test_average_demand_overpacks(self):
        # Each job averages 50% storage + 50% GPU over its iteration;
        # averages sum to 100% so the optimistic variant co-locates
        # them (peaks would forbid it: both peak at 100% on both).
        profile = StageProfile((0.5, 0.0, 0.5, 0.0))
        jobs = [make_job(profile), make_job(profile)]
        peak_plan = TetrisScheduler().decide(0.0, jobs, {}, total_gpus=1)
        avg_plan = TetrisScheduler(use_average_demand=True).decide(
            0.0, jobs, {}, total_gpus=1
        )
        assert all(group.size == 1 for group in peak_plan)
        assert len(avg_plan) == 1
        assert avg_plan[0].size == 2

    def test_name_reflects_variant(self):
        assert TetrisScheduler().name == "Tetris"
        assert TetrisScheduler(use_average_demand=True).name == "Tetris-avg"


class TestGpuBuckets:
    def test_only_same_gpu_count_shares(self):
        a = make_job(GPU_ONLY, gpus=2)
        b = make_job(StageProfile((1.0, 0.0, 0.0, 0.0)), gpus=4)
        plan = TetrisScheduler().decide(0.0, [a, b], {}, total_gpus=8)
        assert all(group.size == 1 for group in plan)
