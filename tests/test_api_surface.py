"""The public API surface: importability and __all__ hygiene.

A downstream user should be able to rely on ``from repro import X``
for everything the README shows; this pins that surface.
"""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.matching",
    "repro.jobs",
    "repro.models",
    "repro.schedulers",
    "repro.cluster",
    "repro.sim",
    "repro.trace",
    "repro.profiler",
    "repro.analysis",
    "repro.observe",
    "repro.sweep",
    "repro.verify",
    "repro.service",
    "repro.fleet",
    "repro.elastic",
    "repro.bench",
    "repro.hetero",
    "repro.replay",
    "repro.cli",
)

TOP_LEVEL_NAMES = (
    "MuriScheduler",
    "MultiRoundGrouper",
    "JobGroup",
    "interleaving_efficiency",
    "pair_efficiency",
    "group_speedup",
    "best_ordering",
    "worst_ordering",
    "max_weight_matching",
    "matching_pairs",
    "Job",
    "JobSpec",
    "JobStatus",
    "Resource",
    "Stage",
    "StageProfile",
    "ModelProfile",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    "Cluster",
    "Machine",
    "ClusterSimulator",
    "SimulationResult",
    "ContentionModel",
    "FaultInjector",
    "Trace",
    "TraceRecord",
    "generate_trace",
    "build_jobs",
    "ResourceProfiler",
    "UniformNoise",
    "Scheduler",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "Decision",
    "DecisionLog",
    "Tracer",
    "TraceEvent",
    "EventCategory",
    "ProvenanceStore",
    "write_chrome_trace",
    "write_jsonl",
    "trace_summary",
    "format_explain",
    "RunSpec",
    "RunResult",
    "SweepRunner",
    "ResultStore",
    "InvariantChecker",
    "InvariantViolation",
    "INVARIANT_CATALOG",
    "EpisodeSpec",
    "run_episode",
    "run_fuzz",
    "SchedulerService",
    "ServiceClient",
    "SubmitRejected",
    "PROTOCOL_VERSION",
    "FleetFrontEnd",
    "FleetTopology",
    "VirtualCluster",
    "TenantQuota",
    "partition_cluster",
    "ElasticMuriScheduler",
    "GoodputAllocator",
    "ScalabilityProfile",
    "attach_scalability",
)


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("name", TOP_LEVEL_NAMES)
def test_top_level_name(name):
    assert hasattr(repro, name), name
    assert name in repro.__all__


@pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
def test_all_lists_are_accurate(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_no_test_prefixed_public_names():
    """Names starting with 'test' would be collected by pytest when
    imported into test modules (a past bug)."""
    for module_name in SUBPACKAGES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert not name.startswith("test"), f"{module_name}.{name}"
