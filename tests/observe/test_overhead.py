"""The zero-overhead contract: tracing off must cost (nearly) nothing.

Two guarantees, in decreasing strictness:

1. With no tracer (the default) or a disabled tracer, a simulation
   records NO events, counters, or provenance — asserted exactly.
2. A disabled tracer threaded through the whole stack slows a 200-job
   simulation by only a few percent.  Wall-clock assertions are
   noise-prone in CI, so the bound here is looser than the ~5%
   acceptance target; each configuration takes the best of three runs.
"""

import time

from repro.cluster.cluster import Cluster
from repro.observe import Tracer
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs


def build_specs(num_jobs=200):
    trace = generate_trace("1", num_jobs=num_jobs, seed=11, at_time_zero=True)
    return [s for s in build_jobs(trace, seed=11) if s.num_gpus <= 16]


def run_once(specs, tracer):
    simulator = ClusterSimulator(
        make_scheduler("muri-s", tracer=tracer),
        cluster=Cluster(2, 8),
        tracer=tracer,
    )
    return simulator.run(specs, "overhead")


class TestDisabledTracerRecordsNothing:
    def test_disabled_tracer_stays_empty(self):
        specs = build_specs(60)
        tracer = Tracer(enabled=False)
        run_once(specs, tracer)
        assert len(tracer) == 0
        assert tracer.counters == {}
        assert len(tracer.provenance) == 0
        assert tracer.dropped_events == 0

    def test_enabled_tracer_records(self):
        specs = build_specs(60)
        tracer = Tracer()
        run_once(specs, tracer)
        assert len(tracer) > 0
        assert len(tracer.provenance) > 0


class TestDisabledTracerOverhead:
    def test_disabled_tracer_wall_time(self):
        specs = build_specs(200)

        def best_of(tracer_factory, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run_once(specs, tracer_factory())
                best = min(best, time.perf_counter() - start)
            return best

        baseline = best_of(lambda: None)
        disabled = best_of(lambda: Tracer(enabled=False))
        # Headroom over the ~5% budget: CI machines are noisy and the
        # absolute times are fractions of a second.
        assert disabled <= baseline * 1.25 + 0.05, (
            f"disabled tracer too slow: {disabled:.3f}s vs "
            f"baseline {baseline:.3f}s"
        )
