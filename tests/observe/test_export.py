"""Tests for the exporters: Chrome trace, JSONL, terminal renderings."""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.observe import (
    EventCategory,
    Tracer,
    format_explain,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.export import to_chrome_trace, to_jsonl
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

#: Every ph the exporter may produce (all valid Trace Event Format).
_VALID_PHS = {"M", "i", "X", "C"}


def traced_run(num_jobs=30, scheduler="muri-s"):
    trace = generate_trace("1", num_jobs=num_jobs, seed=3, at_time_zero=True)
    specs = [s for s in build_jobs(trace, seed=3) if s.num_gpus <= 8]
    tracer = Tracer()
    simulator = ClusterSimulator(
        make_scheduler(scheduler, tracer=tracer),
        cluster=Cluster(1, 8),
        tracer=tracer,
    )
    result = simulator.run(specs, trace.name)
    return tracer, result


class TestChromeTrace:
    def test_document_shape(self):
        tracer = Tracer()
        tracer.emit(EventCategory.JOB, "job.arrival", 1.5, job=3)
        with tracer.span("work", 1.5):
            pass
        doc = to_chrome_trace(tracer)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert event["ph"] in _VALID_PHS
            assert isinstance(event["name"], str)
            assert "pid" in event and "tid" in event
        # The whole document is JSON-serializable.
        json.dumps(doc)

    def test_instants_use_sim_clock_spans_wall_clock(self):
        tracer = Tracer()
        tracer.emit(EventCategory.JOB, "job.arrival", 2.0)
        with tracer.span("work", 2.0):
            pass
        doc = to_chrome_trace(tracer)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert instants[0]["ts"] == pytest.approx(2.0 * 1e6)
        assert instants[0]["pid"] != spans[0]["pid"]
        assert spans[0]["dur"] >= 0

    def test_decision_events_become_counters(self):
        tracer = Tracer()
        tracer.emit(
            EventCategory.SCHED, "sched.decision", 5.0,
            queue_length=4, free_gpus=2, started=1,
        )
        doc = to_chrome_trace(tracer)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {c["name"] for c in counters} == {"queue_length", "free_gpus"}

    def test_full_run_writes_loadable_file(self, tmp_path):
        tracer, _result = traced_run()
        out = tmp_path / "trace.json"
        write_chrome_trace(tracer, out)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) > 10
        assert all(e["ph"] in _VALID_PHS for e in doc["traceEvents"])
        names = {e["name"] for e in doc["traceEvents"]}
        assert "sim.run.start" in names
        assert "sched.decision" in names
        assert "job.finish" in names

    def test_non_json_args_are_stringified(self):
        tracer = Tracer()
        tracer.emit(EventCategory.SIM, "odd", 0.0, value=object())
        json.dumps(to_chrome_trace(tracer))


class TestJsonl:
    def test_one_document_per_event(self, tmp_path):
        tracer = Tracer()
        tracer.emit(EventCategory.JOB, "job.arrival", 1.0, job=3)
        with tracer.span("work"):
            pass
        out = tmp_path / "trace.jsonl"
        write_jsonl(tracer, out)
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["name"] == "job.arrival"
        assert first["args"] == {"job": 3}
        assert second["category"] == "span"
        assert "duration" in second

    def test_to_jsonl_is_lazy(self):
        tracer = Tracer()
        tracer.emit(EventCategory.SIM, "tick", 0.0)
        iterator = to_jsonl(tracer)
        assert json.loads(next(iterator))["name"] == "tick"


class TestSummaries:
    def test_trace_summary_mentions_volumes_and_spans(self):
        tracer, _ = traced_run()
        text = trace_summary(tracer)
        assert "events" in text
        assert "hottest spans" in text
        assert "counters" in text
        assert "provenance" in text

    def test_format_explain_full_run(self):
        tracer, result = traced_run()
        job_id = tracer.provenance.job_ids()[0]
        text = format_explain(tracer, job_id, result)
        assert f"job {job_id}" in text
        assert "grouping decisions" in text
        assert "outcomes" in text
        assert "JCT" in text

    def test_format_explain_without_provenance(self):
        tracer = Tracer()
        text = format_explain(tracer, 123)
        assert "no provenance recorded" in text
