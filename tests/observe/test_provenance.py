"""Tests for the provenance store and the grouping provenance it gets.

Unit tests cover the store's capping and query semantics; the
integration tests run the real grouper/scheduler with a tracer and
check that the recorded decisions describe what actually happened.
"""

import pytest

from repro.core.grouping import MultiRoundGrouper
from repro.core.muri import MuriScheduler
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.observe import ProvenanceStore, Tracer
from repro.observe.provenance import GroupingRecord, OutcomeRecord

CPU = StageProfile((0.1, 0.7, 0.1, 0.1))
GPU = StageProfile((0.1, 0.1, 0.7, 0.1))


def record(sim_time=0.0, members=(1,), **kwargs):
    defaults = dict(
        reason="tick", efficiency=1.0, round_formed=0, seeded=False
    )
    defaults.update(kwargs)
    return GroupingRecord(sim_time=sim_time, members=tuple(members), **defaults)


class TestStore:
    def test_explain_unknown_job_raises(self):
        store = ProvenanceStore()
        with pytest.raises(KeyError):
            store.explain(42)
        assert store.get(42) is None

    def test_record_and_query(self):
        store = ProvenanceStore()
        store.record_grouping(1, record(0.0, (1, 2)))
        store.record_outcome(1, OutcomeRecord(0.0, "started"))
        assert 1 in store
        assert len(store) == 1
        provenance = store.explain(1)
        assert provenance.latest_grouping().members == (1, 2)
        assert provenance.outcomes[0].outcome == "started"

    def test_cap_keeps_first_and_latest(self):
        store = ProvenanceStore(max_groupings_per_job=3)
        for t in range(6):
            store.record_grouping(1, record(float(t)))
        times = [g.sim_time for g in store.explain(1).groupings]
        # The first record survives; the newest records fill the rest.
        assert times[0] == 0.0
        assert times[-1] == 5.0
        assert len(times) == 3

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            ProvenanceStore(max_groupings_per_job=1)

    def test_last_group_with_partners(self):
        store = ProvenanceStore()
        store.record_grouping(1, record(0.0, (1, 2)))
        store.record_grouping(1, record(1.0, (1,)))
        provenance = store.explain(1)
        assert provenance.latest_grouping().members == (1,)
        assert provenance.last_group_with_partners().members == (1, 2)

    def test_partners_of(self):
        rec = record(0.0, (1, 2, 3))
        assert rec.partners_of(2) == (1, 3)
        assert rec.partners_of(9) == (1, 2, 3)


class TestGrouperProvenance:
    def make_jobs(self, n=4):
        profiles = [CPU, GPU] * (n // 2)
        return [
            Job(JobSpec(profile=p, num_iterations=100, job_id=i))
            for i, p in enumerate(profiles[:n])
        ]

    def test_last_decisions_none_without_tracer(self):
        grouper = MultiRoundGrouper()
        grouper.group(self.make_jobs())
        assert grouper.last_decisions is None

    def test_last_decisions_none_with_disabled_tracer(self):
        grouper = MultiRoundGrouper(tracer=Tracer(enabled=False))
        grouper.group(self.make_jobs())
        assert grouper.last_decisions is None

    def test_decisions_cover_every_job(self):
        grouper = MultiRoundGrouper(tracer=Tracer())
        jobs = self.make_jobs(4)
        result = grouper.group(jobs)
        covered = sorted(
            j for d in grouper.last_decisions for j in d.members
        )
        assert covered == [0, 1, 2, 3]
        assert len(grouper.last_decisions) == len(result.groups)

    def test_merged_groups_record_round_and_candidates(self):
        grouper = MultiRoundGrouper(tracer=Tracer())
        jobs = self.make_jobs(2)
        grouper.group(jobs)  # no capacity: the pair merges
        (decision,) = grouper.last_decisions
        assert set(decision.members) == {0, 1}
        assert decision.round_formed == 1
        # Eq. 4 efficiency: 2 perfectly complementary jobs over k=4
        # resources occupy half the interleaved period.
        assert 0.0 < decision.efficiency <= 1.0
        # Each member saw the other as a matched candidate.
        for job_id in decision.members:
            candidates = decision.candidates[job_id]
            assert any(c.matched for c in candidates)

    def test_tracing_matches_untraced_grouping(self):
        jobs = self.make_jobs(6)
        plain = MultiRoundGrouper().group(jobs)
        traced = MultiRoundGrouper(tracer=Tracer()).group(jobs)
        assert [
            tuple(j.job_id for j in g.jobs) for g in plain.groups
        ] == [tuple(j.job_id for j in g.jobs) for g in traced.groups]
        assert plain.total_efficiency == traced.total_efficiency


class TestSchedulerProvenance:
    def test_decide_files_grouping_records(self):
        tracer = Tracer()
        scheduler = MuriScheduler(tracer=tracer)
        jobs = [
            Job(JobSpec(profile=p, num_iterations=100, job_id=i))
            for i, p in enumerate((CPU, GPU))
        ]
        scheduler.decide(10.0, jobs, {}, total_gpus=1)
        for job_id in (0, 1):
            provenance = tracer.provenance.explain(job_id)
            (grouping,) = provenance.groupings
            assert grouping.sim_time == 10.0
            assert grouping.reason == "tick"
            assert set(grouping.members) == {0, 1}
        formed = tracer.events_named("group.formed")
        assert len(formed) == 1
        assert set(formed[0].args["members"]) == {0, 1}
