"""Tests for the Tracer: events, spans, counters, bounded storage."""

import pytest

from repro.observe import EventCategory, Tracer
from repro.observe.tracer import NULL_SPAN, maybe_span


class TestEmit:
    def test_records_events_in_order(self):
        tracer = Tracer()
        tracer.emit(EventCategory.JOB, "job.arrival", 1.0, job=7)
        tracer.emit(EventCategory.SCHED, "sched.decision", 2.0)
        assert len(tracer) == 2
        assert [e.name for e in tracer.events] == [
            "job.arrival", "sched.decision",
        ]
        assert tracer.events[0].args == {"job": 7}
        assert tracer.events[0].sim_time == 1.0

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(EventCategory.JOB, "job.arrival", 1.0)
        tracer.count("anything")
        assert len(tracer) == 0
        assert tracer.counters == {}

    def test_events_filters(self):
        tracer = Tracer()
        tracer.emit(EventCategory.JOB, "job.arrival", 0.0, job=1)
        tracer.emit(EventCategory.JOB, "job.finish", 5.0, job=1)
        tracer.emit(EventCategory.GROUP, "group.formed", 2.0, members=[1, 2])
        assert len(tracer.events_in(EventCategory.JOB)) == 2
        assert len(tracer.events_named("job.finish")) == 1
        # job_events matches both the "job" arg and "members" lists.
        assert len(tracer.job_events(1)) == 3
        assert len(tracer.job_events(2)) == 1

    def test_max_events_drops_overflow(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.emit(EventCategory.SIM, "tick", float(i))
        assert len(tracer) == 2
        assert tracer.dropped_events == 3

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_clear_resets_everything(self):
        tracer = Tracer()
        tracer.emit(EventCategory.SIM, "tick", 0.0)
        tracer.count("c")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.counters == {}
        assert len(tracer.provenance) == 0


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work", 3.0, detail="x"):
            pass
        (event,) = tracer.events
        assert event.is_span
        assert event.name == "work"
        assert event.sim_time == 3.0
        assert event.duration >= 0.0
        assert event.args == {"detail": "x"}

    def test_nested_spans_record_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Inner exits first, so it is recorded first.
        inner, outer = tracer.events
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0

    def test_disabled_span_is_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("work") is NULL_SPAN
        with tracer.span("work"):
            pass
        assert len(tracer) == 0

    def test_maybe_span_with_none_tracer(self):
        assert maybe_span(None, "work") is NULL_SPAN

    def test_maybe_span_with_enabled_tracer(self):
        tracer = Tracer()
        with maybe_span(tracer, "work", 1.0):
            pass
        assert len(tracer) == 1


class TestCounters:
    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4)
        assert tracer.counters == {"hits": 5}

    def test_counters_returns_copy(self):
        tracer = Tracer()
        tracer.count("hits")
        snapshot = tracer.counters
        snapshot["hits"] = 99
        assert tracer.counters == {"hits": 1}
