"""Smoke tests for the examples.

Each example is importable without side effects (main() guarded); the
custom-scheduler example's class is additionally exercised end to end
so the tutorial's code cannot rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    expected = {
        "quickstart.py",
        "mixed_bottleneck_cluster.py",
        "profiling_pipeline.py",
        "trace_study.py",
        "fault_tolerance.py",
        "model_parallel.py",
        "custom_scheduler.py",
        "capacity_planning.py",
    }
    assert expected <= set(EXAMPLE_FILES)


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_imports_cleanly(name):
    module = load_example(name)
    entry_points = [
        attr for attr in vars(module)
        if attr == "main" or attr.startswith("step")
    ]
    assert entry_points, f"{name} has no main()/step*() entry point"


def test_custom_scheduler_class_works():
    from repro.cluster.cluster import Cluster
    from repro.jobs.job import JobSpec
    from repro.jobs.stage import StageProfile
    from repro.sim.simulator import ClusterSimulator

    module = load_example("custom_scheduler.py")
    scheduler = module.MuriFtfScheduler()
    assert scheduler.name == "Muri-FTF"

    profiles = [
        StageProfile((0.7, 0.1, 0.1, 0.1)),
        StageProfile((0.1, 0.1, 0.7, 0.1)),
    ]
    specs = [
        JobSpec(profile=profiles[i % 2], num_iterations=100)
        for i in range(8)
    ]
    result = ClusterSimulator(
        scheduler, cluster=Cluster(1, 2), restart_penalty=0.0
    ).run(specs, "tutorial")
    assert result.num_jobs == 8
