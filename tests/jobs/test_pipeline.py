"""Tests for model-parallel (pipeline) job support (paper section 7)."""

import pytest

from repro.jobs.pipeline import make_model_parallel_job
from repro.jobs.resources import Resource


def make(**kwargs):
    defaults = dict(
        num_stages=4,
        compute_time=0.8,
        activation_time=0.1,
        load_time=0.15,
        preprocess_time=0.05,
        sync_time=0.2,
        num_iterations=100,
    )
    defaults.update(kwargs)
    return make_model_parallel_job(**defaults)


class TestValidation:
    def test_minimum_two_stages(self):
        with pytest.raises(ValueError):
            make(num_stages=1)

    def test_positive_compute(self):
        with pytest.raises(ValueError):
            make(compute_time=0.0)

    def test_nonnegative_activation(self):
        with pytest.raises(ValueError):
            make(activation_time=-0.1)


class TestWorkerRoles:
    def test_roles(self):
        job = make()
        roles = [w.role for w in job.workers]
        assert roles == ["first", "middle", "middle", "last"]

    def test_first_worker_loads_and_preprocesses(self):
        first = make().workers[0]
        assert first.profile.duration(Resource.STORAGE) == pytest.approx(0.15)
        assert first.profile.duration(Resource.CPU) == pytest.approx(0.05)

    def test_middle_workers_only_network_and_gpu(self):
        middle = make().workers[1]
        assert middle.profile.duration(Resource.STORAGE) == 0.0
        assert middle.profile.duration(Resource.CPU) == 0.0
        assert middle.profile.duration(Resource.GPU) > 0
        assert middle.profile.duration(Resource.NETWORK) == pytest.approx(0.1)

    def test_last_worker_syncs(self):
        last = make().workers[-1]
        # Full duplex: max(activation receive, gradient sync) = 0.2.
        assert last.profile.duration(Resource.NETWORK) == pytest.approx(0.2)


class TestComputeSplit:
    def test_balanced_split(self):
        job = make()
        for worker in job.workers:
            assert worker.profile.duration(Resource.GPU) == pytest.approx(0.2)

    def test_front_loaded_split(self):
        job = make(balanced=False)
        gpu_times = [w.profile.duration(Resource.GPU) for w in job.workers]
        assert gpu_times == sorted(gpu_times, reverse=True)
        assert sum(gpu_times) == pytest.approx(0.8)


class TestSchedulingView:
    def test_spec_occupies_one_gpu_per_stage(self):
        assert make().spec.num_gpus == 4

    def test_spec_profile_is_bottleneck_workers(self):
        job = make()
        assert (
            job.spec.profile.durations
            == job.bottleneck_worker.profile.durations
        )

    def test_pipeline_period_is_slowest_worker(self):
        job = make()
        assert job.pipeline_period == pytest.approx(
            max(w.profile.iteration_time for w in job.workers)
        )

    def test_first_worker_is_bottleneck_with_heavy_io(self):
        job = make(load_time=0.5, preprocess_time=0.3)
        assert job.bottleneck_worker.role == "first"

    def test_utilizations_bounded(self):
        utils = make().worker_utilizations()
        assert len(utils) == 4
        assert all(0 < u <= 1.0 for u in utils)
        assert max(utils) == pytest.approx(1.0)

    def test_schedulable_end_to_end(self):
        """A pipeline job flows through the simulator like any other."""
        from repro.cluster.cluster import Cluster
        from repro.core.muri import MuriScheduler
        from repro.jobs.job import Job
        from repro.sim.simulator import ClusterSimulator

        job = make(num_iterations=50)
        result = ClusterSimulator(
            MuriScheduler(), cluster=Cluster(1, 4), restart_penalty=0.0
        ).run([job.spec], "pipeline")
        assert result.num_jobs == 1
        assert result.jcts[job.spec.job_id] >= 50 * job.pipeline_period * 0.99


class TestInterleavingAcrossPipelines:
    def test_complementary_pipelines_interleave_well(self):
        """An IO-bound first stage and a compute-bound pipeline can
        share GPUs — section 7's 'same propagation direction' idea."""
        from repro.core.efficiency import pair_efficiency

        io_heavy = make(load_time=0.6, preprocess_time=0.2, compute_time=0.4)
        gpu_heavy = make(compute_time=3.2, activation_time=0.05)
        gamma = pair_efficiency(
            io_heavy.spec.profile, gpu_heavy.spec.profile
        )
        same = pair_efficiency(gpu_heavy.spec.profile, gpu_heavy.spec.profile)
        assert gamma > same
