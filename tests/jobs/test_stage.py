"""Tests for Stage and StageProfile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs.resources import Resource
from repro.jobs.stage import Stage, StageProfile


class TestStage:
    def test_valid(self):
        stage = Stage(Resource.GPU, 0.5)
        assert stage.resource == Resource.GPU
        assert stage.duration == 0.5

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            Stage(Resource.GPU, -0.1)

    def test_frozen(self):
        stage = Stage(Resource.CPU, 1.0)
        with pytest.raises(AttributeError):
            stage.duration = 2.0


class TestStageProfileConstruction:
    def test_from_mapping(self):
        profile = StageProfile.from_mapping({Resource.GPU: 0.5, Resource.CPU: 0.25})
        assert profile.duration(Resource.GPU) == 0.5
        assert profile.duration(Resource.CPU) == 0.25
        assert profile.duration(Resource.STORAGE) == 0.0

    def test_from_stages_sums_duplicates(self):
        profile = StageProfile.from_stages(
            [Stage(Resource.GPU, 0.2), Stage(Resource.GPU, 0.3)]
        )
        assert profile.duration(Resource.GPU) == pytest.approx(0.5)

    def test_from_fractions_normalizes(self):
        # Raw Table 1 percentages may not sum to 100.
        profile = StageProfile.from_fractions(
            2.0, {Resource.GPU: 85.0, Resource.NETWORK: 28.0}
        )
        assert profile.iteration_time == pytest.approx(2.0)
        assert profile.duration(Resource.GPU) == pytest.approx(2.0 * 85 / 113)

    def test_from_fractions_rejects_zero_total(self):
        with pytest.raises(ValueError):
            StageProfile.from_fractions(1.0, {Resource.GPU: 0.0})

    def test_from_fractions_rejects_bad_iteration_time(self):
        with pytest.raises(ValueError):
            StageProfile.from_fractions(0.0, {Resource.GPU: 1.0})

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            StageProfile((0.0, 0.0, 0.0, 0.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageProfile((1.0, -0.1, 0.0, 0.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StageProfile(())

    def test_short_profiles_allowed(self):
        # Two-resource examples (paper Fig. 4) are valid.
        profile = StageProfile((2.0, 1.0))
        assert profile.num_resources == 2
        assert profile.iteration_time == 3.0


class TestStageProfileAccessors:
    def setup_method(self):
        self.profile = StageProfile((0.6, 0.18, 0.06, 0.02))

    def test_iteration_time(self):
        assert self.profile.iteration_time == pytest.approx(0.86)

    def test_bottleneck(self):
        assert self.profile.bottleneck == Resource.STORAGE

    def test_fraction(self):
        assert self.profile.fraction(Resource.STORAGE) == pytest.approx(0.6 / 0.86)

    def test_fractions_sum_to_one(self):
        assert sum(self.profile.fractions().values()) == pytest.approx(1.0)

    def test_getitem(self):
        assert self.profile[Resource.CPU] == 0.18

    def test_iter_skips_empty_stages(self):
        profile = StageProfile((0.5, 0.0, 0.5, 0.0))
        stages = list(profile)
        assert [s.resource for s in stages] == [Resource.STORAGE, Resource.GPU]

    def test_iter_order_is_data_path(self):
        stages = list(self.profile)
        assert [s.resource for s in stages] == list(Resource)


class TestStageProfileTransforms:
    def test_scaled(self):
        profile = StageProfile((1.0, 2.0, 3.0, 4.0)).scaled(0.5)
        assert profile.durations == (0.5, 1.0, 1.5, 2.0)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            StageProfile((1.0, 0, 0, 0)).scaled(0.0)

    def test_with_duration(self):
        profile = StageProfile((1.0, 2.0, 3.0, 4.0)).with_duration(Resource.GPU, 9.0)
        assert profile.duration(Resource.GPU) == 9.0
        assert profile.duration(Resource.CPU) == 2.0

    def test_rounded(self):
        profile = StageProfile((1.23456789, 0, 0, 1)).rounded(2)
        assert profile.duration(Resource.STORAGE) == 1.23


class TestDurationsKey:
    def test_zero_quantum_is_exact(self):
        profile = StageProfile((0.123456, 0.2, 0.3, 0.4))
        assert profile.durations_key() == profile.durations
        assert profile.durations_key(0.0) is profile.durations

    def test_quantum_snaps_to_grid(self):
        profile = StageProfile((0.123, 0.207, 0.0, 0.395))
        assert profile.durations_key(0.01) == pytest.approx(
            (0.12, 0.21, 0.0, 0.40)
        )

    def test_nearby_profiles_share_a_key(self):
        a = StageProfile((0.401, 0.199, 0.300, 0.100))
        b = StageProfile((0.399, 0.201, 0.299, 0.101))
        assert a.durations_key(0.01) == b.durations_key(0.01)
        assert a.durations_key(0.0) != b.durations_key(0.0)

    def test_key_is_hashable(self):
        profile = StageProfile((0.4, 0.2, 0.3, 0.1))
        assert {profile.durations_key(0.05): True}


class TestIterationTimeCaching:
    def test_cached_at_construction(self):
        profile = StageProfile((0.6, 0.18, 0.06, 0.02))
        assert profile._iteration_time == pytest.approx(0.86)
        assert profile.iteration_time == profile._iteration_time

    def test_transforms_recompute(self):
        profile = StageProfile((1.0, 2.0, 3.0, 4.0))
        assert profile.scaled(0.5).iteration_time == pytest.approx(5.0)
        assert profile.with_duration(
            Resource.GPU, 9.0
        ).iteration_time == pytest.approx(1.0 + 2.0 + 9.0 + 4.0)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ).filter(lambda d: sum(d) > 0)
)
def test_profile_invariants(durations):
    profile = StageProfile(tuple(durations))
    assert profile.iteration_time == pytest.approx(sum(durations))
    assert profile.duration(profile.bottleneck) == max(durations)
    assert abs(sum(profile.fractions().values()) - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_scaling_preserves_fractions(durations, factor):
    profile = StageProfile(tuple(durations))
    scaled = profile.scaled(factor)
    for resource in Resource:
        assert scaled.fraction(resource) == pytest.approx(
            profile.fraction(resource), rel=1e-9
        )
