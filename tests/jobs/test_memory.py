"""Tests for GPU memory accounting (section 2.2's feasibility claim)."""

import pytest

from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.memory import (
    V100_MEMORY_GB,
    MemoryFootprint,
    group_peak_memory,
)
from repro.jobs.stage import StageProfile
from repro.models.zoo import get_model


class TestFootprint:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryFootprint(-1.0, 1.0)
        with pytest.raises(ValueError):
            MemoryFootprint(1.0, -1.0)

    def test_solo_peak(self):
        assert MemoryFootprint(2.0, 5.0).solo_peak_gb == 7.0


class TestGroupPeak:
    def test_empty_group(self):
        with pytest.raises(ValueError):
            group_peak_memory([])

    def test_residual_validation(self):
        with pytest.raises(ValueError):
            group_peak_memory([MemoryFootprint(1, 1)], residual=1.5)

    def test_single_job_is_solo_peak(self):
        footprint = MemoryFootprint(2.0, 5.0)
        assert group_peak_memory([footprint]) == footprint.solo_peak_gb

    def test_coordinated_staggering(self):
        a, b = MemoryFootprint(1.0, 4.0), MemoryFootprint(2.0, 3.0)
        # weights sum + largest activation + 10% of the other.
        assert group_peak_memory([a, b]) == pytest.approx(3.0 + 4.0 + 0.3)

    def test_uncoordinated_sums_everything(self):
        a, b = MemoryFootprint(1.0, 4.0), MemoryFootprint(2.0, 3.0)
        assert group_peak_memory([a, b], coordinated=False) == pytest.approx(10.0)

    def test_coordinated_below_uncoordinated(self):
        footprints = [MemoryFootprint(0.5, 3.0) for _ in range(4)]
        assert group_peak_memory(footprints) < group_peak_memory(
            footprints, coordinated=False
        )

    def test_zero_residual_is_perfect_staggering(self):
        footprints = [MemoryFootprint(0.0, 3.0), MemoryFootprint(0.0, 2.0)]
        assert group_peak_memory(footprints, residual=0.0) == 3.0


class TestPaperClaim:
    def test_table2_quad_within_ten_percent_of_gpt2(self):
        """Section 2.2: interleaving the four-model group raises peak
        memory by <10% over GPT-2, the largest member."""
        footprints = [
            get_model(name).memory
            for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16")
        ]
        gpt2_peak = get_model("GPT-2").memory.solo_peak_gb
        quad_peak = group_peak_memory(footprints)
        assert quad_peak <= gpt2_peak * 1.10
        assert quad_peak <= V100_MEMORY_GB  # feasible on the testbed GPU

    def test_gpt2_has_largest_footprint(self):
        from repro.models.zoo import DEFAULT_MODELS

        peaks = {m: get_model(m).memory.solo_peak_gb for m in DEFAULT_MODELS}
        assert max(peaks, key=peaks.get) == "GPT-2"


class TestGrouperConstraint:
    @staticmethod
    def _job(activations, model="custom"):
        return Job(JobSpec(
            profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
            num_iterations=10,
            memory=MemoryFootprint(1.0, activations),
            model=model,
        ))

    def test_infeasible_merge_blocked(self):
        big_a, big_b = self._job(14.0), self._job(14.0)
        grouper = MultiRoundGrouper(gpu_memory_gb=16.0)
        result = grouper.group([big_a, big_b], capacity=1)
        assert all(group.size == 1 for group in result.groups)

    def test_feasible_merge_allowed(self):
        small_a, small_b = self._job(2.0), self._job(2.0)
        grouper = MultiRoundGrouper(gpu_memory_gb=16.0)
        result = grouper.group([small_a, small_b], capacity=1)
        assert result.groups[0].size == 2

    def test_jobs_without_footprint_exempt(self):
        plain = [
            Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                        num_iterations=10))
            for _ in range(2)
        ]
        grouper = MultiRoundGrouper(gpu_memory_gb=0.001)
        result = grouper.group(plain, capacity=1)
        assert result.groups[0].size == 2

    def test_group_peak_memory_accessor(self):
        a, b = self._job(4.0), self._job(2.0)
        grouper = MultiRoundGrouper()
        group = grouper.group([a, b], capacity=1).groups[0]
        assert group.peak_memory_gb() == pytest.approx(2.0 + 4.0 + 0.2)

    def test_group_peak_memory_none_without_footprints(self):
        from repro.core.group import JobGroup

        job = Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                          num_iterations=10))
        assert JobGroup.solo(job).peak_memory_gb() is None

    def test_mixed_footprints_report_known_peak(self):
        """A mixed known/unknown group reports the peak of its known
        footprints — a binding lower bound, not a silent exemption."""
        known = self._job(4.0)
        unknown = Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                              num_iterations=10))
        group = MultiRoundGrouper().group(
            [known, unknown], capacity=1
        ).groups[0]
        assert group.size == 2
        assert group.peak_memory_gb() == pytest.approx(1.0 + 4.0)

    def test_mixed_footprints_still_block_infeasible_merge(self):
        # The known member alone exceeds the cap; the unknown member
        # must not launder the merge through the old exemption.
        big, plain = self._job(14.0), Job(JobSpec(
            profile=StageProfile((0.1, 0.1, 0.7, 0.1)), num_iterations=10,
        ))
        grouper = MultiRoundGrouper(gpu_memory_gb=12.0)
        result = grouper.group([big, plain], capacity=1)
        assert all(group.size == 1 for group in result.groups)

    def test_skipped_checks_are_counted(self):
        from repro.observe import Tracer

        big, plain = self._job(2.0), Job(JobSpec(
            profile=StageProfile((0.1, 0.1, 0.7, 0.1)), num_iterations=10,
        ))
        tracer = Tracer()
        grouper = MultiRoundGrouper(gpu_memory_gb=16.0, tracer=tracer)
        grouper.group([big, plain], capacity=1)
        assert tracer.counters.get("group.memory_check_skipped", 0) >= 1


class TestPerTypeCaps:
    """gpu_memory_by_type: feasibility follows the landing generation."""

    @staticmethod
    def _job(affinity=None, mode="pin"):
        return Job(JobSpec(
            profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
            num_iterations=10,
            memory=MemoryFootprint(1.0, 14.0),
            model="custom",
            gpu_affinity=affinity,
            affinity_mode=mode,
        ))

    # Two of these jobs merged peak at 2.0 + 14.0 + 1.4 = 17.4 GB:
    # over a k80's 12 GB, comfortably under an a100's 40 GB.
    CAPS = {"k80": 12.0, "a100": 40.0}

    def test_merge_fits_the_roomy_generation(self):
        grouper = MultiRoundGrouper(
            gpu_memory_gb=12.0, gpu_memory_by_type=self.CAPS
        )
        jobs = [self._job("a100"), self._job("a100")]
        result = grouper.group(jobs, capacity=1)
        assert result.groups[0].size == 2

    def test_same_merge_blocked_on_the_tight_generation(self):
        grouper = MultiRoundGrouper(
            gpu_memory_gb=40.0, gpu_memory_by_type=self.CAPS
        )
        jobs = [self._job("k80"), self._job("k80")]
        result = grouper.group(jobs, capacity=1)
        assert all(group.size == 1 for group in result.groups)

    def test_unaffine_jobs_keep_the_flat_cap(self):
        grouper = MultiRoundGrouper(
            gpu_memory_gb=12.0, gpu_memory_by_type=self.CAPS
        )
        result = grouper.group([self._job(), self._job()], capacity=1)
        assert all(group.size == 1 for group in result.groups)

    def test_generation_missing_from_table_falls_back_flat(self):
        grouper = MultiRoundGrouper(
            gpu_memory_gb=12.0, gpu_memory_by_type=self.CAPS
        )
        jobs = [self._job("p100"), self._job("p100")]
        result = grouper.group(jobs, capacity=1)
        assert all(group.size == 1 for group in result.groups)
