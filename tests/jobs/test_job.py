"""Tests for JobSpec and runtime Job state."""

import pytest

from repro.jobs.job import Job, JobSpec, JobStatus
from repro.jobs.resources import Resource
from repro.jobs.stage import StageProfile

PROFILE = StageProfile((0.2, 0.2, 0.4, 0.2))  # 1 second per iteration


def make_spec(**kwargs):
    defaults = dict(profile=PROFILE, num_gpus=2, submit_time=10.0, num_iterations=100)
    defaults.update(kwargs)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_auto_ids_unique(self):
        a, b = JobSpec(profile=PROFILE), JobSpec(profile=PROFILE)
        assert a.job_id != b.job_id

    def test_auto_name(self):
        spec = JobSpec(profile=PROFILE)
        assert spec.name == f"job-{spec.job_id}"

    def test_explicit_identity(self):
        spec = JobSpec(profile=PROFILE, job_id=77, name="mine")
        assert spec.job_id == 77
        assert spec.name == "mine"

    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(num_gpus=0)
        with pytest.raises(ValueError):
            make_spec(num_iterations=0)
        with pytest.raises(ValueError):
            make_spec(submit_time=-1.0)

    def test_iteration_time(self):
        assert make_spec().iteration_time == pytest.approx(1.0)

    def test_total_service_time(self):
        assert make_spec().total_service_time == pytest.approx(100.0)

    def test_gpu_service(self):
        assert make_spec().gpu_service == pytest.approx(200.0)

    def test_bottleneck(self):
        assert make_spec().bottleneck == Resource.GPU

    def test_frozen(self):
        spec = make_spec()
        with pytest.raises(AttributeError):
            spec.num_gpus = 4


class TestJobLifecycle:
    def test_initial_state(self):
        job = Job(make_spec())
        assert job.status == JobStatus.PENDING
        assert job.remaining_iterations == 100.0
        assert job.attained_service == 0.0
        assert not job.is_finished

    def test_start_records_time(self):
        job = Job(make_spec())
        job.mark_started(15.0)
        assert job.status == JobStatus.RUNNING
        assert job.start_time == 15.0
        assert job.preemptions == 0

    def test_restart_counts_preemption(self):
        job = Job(make_spec())
        job.mark_started(15.0)
        job.mark_stopped()
        assert job.status == JobStatus.PENDING
        job.mark_started(30.0)
        assert job.preemptions == 1
        assert job.start_time == 15.0  # first start is preserved

    def test_cannot_start_finished_job(self):
        job = Job(make_spec())
        job.mark_finished(50.0)
        with pytest.raises(ValueError):
            job.mark_started(60.0)

    def test_finish(self):
        job = Job(make_spec())
        job.mark_started(15.0)
        job.mark_finished(120.0)
        assert job.is_finished
        assert job.completion_time() == pytest.approx(110.0)
        assert job.remaining_iterations == 0.0

    def test_completion_time_requires_finish(self):
        with pytest.raises(ValueError):
            Job(make_spec()).completion_time()


class TestJobProgress:
    def test_advance(self):
        job = Job(make_spec())
        job.advance(iterations=10.0, wall_time=20.0)
        assert job.remaining_iterations == 90.0
        assert job.attained_service == 20.0

    def test_advance_clamps_at_zero(self):
        job = Job(make_spec())
        job.advance(iterations=1000.0, wall_time=1.0)
        assert job.remaining_iterations == 0.0

    def test_advance_rejects_negative(self):
        job = Job(make_spec())
        with pytest.raises(ValueError):
            job.advance(-1.0, 0.0)
        with pytest.raises(ValueError):
            job.advance(0.0, -1.0)

    def test_remaining_service_time(self):
        job = Job(make_spec())
        job.advance(iterations=40.0, wall_time=50.0)
        assert job.remaining_service_time == pytest.approx(60.0)
        assert job.remaining_gpu_service == pytest.approx(120.0)

    def test_attained_gpu_service(self):
        job = Job(make_spec())
        job.advance(iterations=5.0, wall_time=7.0)
        assert job.attained_gpu_service == pytest.approx(14.0)

    def test_pending_time_while_waiting(self):
        job = Job(make_spec())  # submitted at t=10
        assert job.pending_time(now=30.0) == pytest.approx(20.0)

    def test_pending_time_subtracts_runtime(self):
        job = Job(make_spec())
        job.advance(iterations=5.0, wall_time=8.0)
        assert job.pending_time(now=30.0) == pytest.approx(12.0)

    def test_pending_time_after_finish_is_fixed(self):
        job = Job(make_spec())
        job.advance(iterations=100.0, wall_time=50.0)
        job.mark_finished(100.0)
        assert job.pending_time(now=500.0) == pytest.approx(100.0 - 10.0 - 50.0)

    def test_convenience_accessors(self):
        spec = make_spec()
        job = Job(spec)
        assert job.job_id == spec.job_id
        assert job.name == spec.name
        assert job.num_gpus == 2
        assert job.profile is spec.profile
