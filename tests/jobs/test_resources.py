"""Tests for the resource/stage vocabulary."""

import pytest

from repro.jobs.resources import (
    NUM_RESOURCES,
    RESOURCE_ORDER,
    STAGE_NAMES,
    Resource,
)


def test_four_resources():
    assert NUM_RESOURCES == 4
    assert len(RESOURCE_ORDER) == 4


def test_data_path_order():
    assert RESOURCE_ORDER == (
        Resource.STORAGE,
        Resource.CPU,
        Resource.GPU,
        Resource.NETWORK,
    )


def test_indices_are_dense():
    assert [int(r) for r in RESOURCE_ORDER] == [0, 1, 2, 3]


def test_stage_names_cover_all_resources():
    assert set(STAGE_NAMES) == set(RESOURCE_ORDER)


def test_stage_name_property():
    assert Resource.STORAGE.stage_name == "load_data"
    assert Resource.CPU.stage_name == "preprocess"
    assert Resource.GPU.stage_name == "propagate"
    assert Resource.NETWORK.stage_name == "synchronize"


@pytest.mark.parametrize("name,expected", [
    ("gpu", Resource.GPU),
    ("GPU", Resource.GPU),
    ("storage", Resource.STORAGE),
    ("network", Resource.NETWORK),
    ("load_data", Resource.STORAGE),
    ("Preprocess", Resource.CPU),
    ("synchronize", Resource.NETWORK),
    (" propagate ", Resource.GPU),
])
def test_from_name(name, expected):
    assert Resource.from_name(name) == expected


def test_from_name_unknown():
    with pytest.raises(ValueError):
        Resource.from_name("tpu")


def test_resources_usable_as_indices():
    durations = [1.0, 2.0, 3.0, 4.0]
    assert durations[Resource.GPU] == 3.0
