"""Tests for Machine GPU-slot allocation."""

import pytest

from repro.cluster.machine import GpuSlot, Machine


def test_defaults_match_paper_testbed():
    machine = Machine(machine_id=0)
    assert machine.num_gpus == 8
    assert machine.num_cpus == 2
    assert machine.memory_gb == 256


def test_requires_a_gpu():
    with pytest.raises(ValueError):
        Machine(machine_id=0, num_gpus=0)


def test_allocate_returns_slots():
    machine = Machine(machine_id=3, num_gpus=4)
    slots = machine.allocate(2, owner=7)
    assert len(slots) == 2
    assert all(isinstance(s, GpuSlot) for s in slots)
    assert all(s.machine_id == 3 for s in slots)
    assert machine.free_gpu_count == 2
    assert machine.allocated_gpu_count == 2


def test_allocate_too_many():
    machine = Machine(machine_id=0, num_gpus=2)
    with pytest.raises(ValueError):
        machine.allocate(3, owner=1)
    # Nothing was allocated.
    assert machine.free_gpu_count == 2


def test_owner_of():
    machine = Machine(machine_id=0, num_gpus=2)
    slots = machine.allocate(1, owner=42)
    assert machine.owner_of(slots[0].gpu_index) == 42
    free_index = machine.free_gpu_indices()[0]
    assert machine.owner_of(free_index) is None


def test_owner_of_out_of_range():
    machine = Machine(machine_id=0, num_gpus=2)
    with pytest.raises(ValueError):
        machine.owner_of(5)


def test_release():
    machine = Machine(machine_id=0, num_gpus=4)
    slots = machine.allocate(3, owner=1)
    machine.release(slots[:2])
    assert machine.free_gpu_count == 3


def test_release_wrong_machine():
    machine = Machine(machine_id=0, num_gpus=2)
    machine.allocate(1, owner=1)
    with pytest.raises(ValueError):
        machine.release([GpuSlot(machine_id=9, gpu_index=0)])


def test_release_unallocated():
    machine = Machine(machine_id=0, num_gpus=2)
    with pytest.raises(ValueError):
        machine.release([GpuSlot(machine_id=0, gpu_index=0)])


def test_release_owner():
    machine = Machine(machine_id=0, num_gpus=4)
    machine.allocate(2, owner=1)
    machine.allocate(1, owner=2)
    assert machine.release_owner(1) == 2
    assert machine.free_gpu_count == 3
    assert machine.owners() == {2}


def test_free_indices_ascending():
    machine = Machine(machine_id=0, num_gpus=4)
    machine.allocate(2, owner=1)
    assert machine.free_gpu_indices() == sorted(machine.free_gpu_indices())


def test_slot_str():
    assert str(GpuSlot(1, 5)) == "m1:g5"
