"""Typed machines, typed clusters, and affinity-aware placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.machine import GpuType
from repro.cluster.placement import DescendingPlacer, ThroughputAwarePlacer
from repro.hetero.types import TypeScaling

V100 = GpuType("v100", speed_factor=1.0, memory_gb=32.0)
A100 = GpuType("a100", speed_factor=2.0, memory_gb=40.0)
K80 = GpuType("k80", speed_factor=0.35, memory_gb=12.0)


def typed_cluster():
    """Two v100 machines (ids 0-1), two a100 machines (ids 2-3)."""
    return Cluster(4, 4, machine_types=[V100, V100, A100, A100])


class TestTypedCluster:
    def test_machine_types_length_validated(self):
        with pytest.raises(ValueError):
            Cluster(3, 4, machine_types=[V100])

    def test_untyped_cluster_has_no_type_names(self):
        cluster = Cluster(2, 4)
        assert cluster.gpu_type_names() == ()
        assert not cluster.is_heterogeneous
        assert cluster.gpu_type_of_machine(0) is None

    def test_typed_cluster_reports_names(self):
        cluster = typed_cluster()
        assert cluster.gpu_type_names() == ("a100", "v100")
        assert cluster.is_heterogeneous
        assert cluster.gpu_type_of_machine(0) == "v100"
        assert cluster.gpu_type_of_machine(3) == "a100"

    def test_machines_of_type_filters(self):
        cluster = typed_cluster()
        assert [m.machine_id for m in cluster.machines_of_type("a100")] == [2, 3]
        assert cluster.machines_of_type("k80") == []

    def test_machines_of_type_none_returns_all(self):
        cluster = typed_cluster()
        assert len(cluster.machines_of_type(None)) == 4


class TestMachineTypeMatching:
    def test_matches_none_always(self):
        cluster = typed_cluster()
        assert cluster.machine(0).matches_type(None)

    def test_matches_own_type_only(self):
        machine = typed_cluster().machine(2)
        assert machine.matches_type("a100")
        assert not machine.matches_type("v100")

    def test_untyped_machine_matches_nothing_specific(self):
        machine = Cluster(1, 4).machine(0)
        assert machine.matches_type(None)
        assert not machine.matches_type("v100")


class TestAffinityPlacement:
    def test_pin_restricts_to_the_typed_pool(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(cluster, 4, gpu_type="a100")
        assert plan is not None
        assert set(plan) <= {2, 3}

    def test_pin_infeasible_when_pool_exhausted(self):
        cluster = typed_cluster()
        # a100 pool is 8 GPUs; a 9-GPU pin cannot fit even though the
        # cluster as a whole has 16 free.
        assert DescendingPlacer().plan_for(
            cluster, 9, gpu_type="a100"
        ) is None

    def test_prefer_falls_back_to_whole_cluster(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(
            cluster, 9, gpu_type="a100", prefer=True
        )
        assert plan is not None
        assert sum(plan.values()) == 9

    def test_prefer_stays_on_type_when_feasible(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(
            cluster, 4, gpu_type="a100", prefer=True
        )
        assert set(plan) <= {2, 3}

    def test_untyped_plan_unchanged(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(cluster, 16)
        assert sum(plan.values()) == 16


@st.composite
def occupied_typed_clusters(draw):
    """A partially occupied typed cluster plus one demand and a target
    generation — the inputs of a single plan_for call."""
    machines = draw(st.integers(min_value=2, max_value=6))
    gpus = draw(st.integers(min_value=1, max_value=8))
    types = draw(
        st.lists(
            st.sampled_from([V100, A100, K80]),
            min_size=machines, max_size=machines,
        )
    )
    cluster = Cluster(machines, gpus, machine_types=types)
    used = draw(
        st.lists(
            st.integers(min_value=0, max_value=gpus),
            min_size=machines, max_size=machines,
        )
    )
    for machine_id, count in enumerate(used):
        if count > 0:
            cluster.allocate(1000 + machine_id, {machine_id: count})
    demand = draw(st.integers(min_value=1, max_value=machines * gpus))
    target = draw(st.sampled_from(["v100", "a100", "k80"]))
    return cluster, demand, target


@settings(max_examples=150, deadline=None)
@given(occupied_typed_clusters())
def test_feasibility_is_monotone_pin_prefer_untyped(params):
    """Relaxing the affinity never loses feasibility: a demand a hard
    pin can place, a soft preference can place; a demand a preference
    can place, the untyped path can place.  And whenever the pinned
    pool suffices, the preference actually lands there."""
    cluster, demand, target = params
    placer = DescendingPlacer()
    typed_ids = {
        m.machine_id for m in cluster.machines_of_type(target)
    }

    pin = placer.plan_for(cluster, demand, gpu_type=target)
    prefer = placer.plan_for(cluster, demand, gpu_type=target, prefer=True)
    untyped = placer.plan_for(cluster, demand)

    if pin is not None:
        assert prefer is not None
        assert set(prefer) <= typed_ids
    if prefer is not None:
        assert untyped is not None
    # Every produced plan delivers exactly the demand, and a pinned
    # plan never leaves its pool.
    for plan in (pin, prefer, untyped):
        if plan is not None:
            assert sum(plan.values()) == demand
    if pin is not None:
        assert set(pin) <= typed_ids


def three_gen_cluster():
    """Two machines per generation: k80 ids 0-1, v100 2-3, a100 4-5."""
    return Cluster(6, 4, machine_types=[K80, K80, V100, V100, A100, A100])


class TestThroughputAwarePlacer:
    def test_unaffine_demand_steered_to_fastest_pool(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        plan = placer.plan_for_model(typed_cluster(), 2, model="gpt2")
        assert set(plan) <= {2, 3}  # the a100 machines

    def test_preference_for_slower_pool_is_overridden(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        plan = placer.plan_for_model(
            typed_cluster(), 2, gpu_type="v100", prefer=True, model="gpt2"
        )
        assert set(plan) <= {2, 3}

    def test_hard_pin_is_never_steered(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        plan = placer.plan_for_model(
            typed_cluster(), 2, gpu_type="v100", prefer=False, model="gpt2"
        )
        assert set(plan) <= {0, 1}

    def test_factor_tie_broken_by_preferred_generation(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(
                base={"k80": 1.0, "v100": 2.0, "a100": 2.0}
            )
        )
        preferred = placer.plan_for_model(
            three_gen_cluster(), 2, gpu_type="v100", prefer=True,
            model="gpt2",
        )
        assert set(preferred) <= {2, 3}
        # Without a preference the name orders equal factors: a100
        # before v100, deterministically.
        unaffine = placer.plan_for_model(
            three_gen_cluster(), 2, model="gpt2"
        )
        assert set(unaffine) <= {4, 5}

    def test_spans_cluster_when_no_pool_suffices(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        plan = placer.plan_for_model(typed_cluster(), 12, model="gpt2")
        assert sum(plan.values()) == 12
        assert len(plan) > 2  # necessarily crosses generation pools

    def test_steering_falls_back_when_pools_are_busy(self):
        cluster = typed_cluster()
        cluster.allocate(99, {2: 4, 3: 4})  # exhaust the a100 pool
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        plan = placer.plan_for_model(cluster, 2, model="gpt2")
        assert set(plan) <= {0, 1}  # second-fastest pool hosts it


class TestThroughputAwareDegeneracy:
    """Every no-signal case must match the parent plan exactly."""

    def _assert_matches_parent(self, placer, cluster, **kwargs):
        parent = DescendingPlacer().plan_for_model(cluster, 3, **kwargs)
        aware = placer.plan_for_model(cluster, 3, **kwargs)
        assert aware == parent

    def test_no_model_matches_parent(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        self._assert_matches_parent(placer, typed_cluster(), model=None)

    def test_uniform_factors_match_parent(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.5, "a100": 1.5})
        )
        self._assert_matches_parent(
            placer, typed_cluster(), gpu_type="a100", prefer=True,
            model="gpt2",
        )

    def test_untyped_cluster_matches_parent(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        self._assert_matches_parent(placer, Cluster(4, 4), model="gpt2")

    def test_single_generation_matches_parent(self):
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0, "a100": 2.0})
        )
        cluster = Cluster(4, 4, machine_types=[A100] * 4)
        self._assert_matches_parent(placer, cluster, model="gpt2")

    def test_unknown_generation_matches_parent(self):
        # a100 missing from the table: no complete factor set, so the
        # aware path must abstain rather than half-score the pools.
        placer = ThroughputAwarePlacer(
            scaling=TypeScaling(base={"v100": 1.0})
        )
        self._assert_matches_parent(
            placer, typed_cluster(), gpu_type="v100", prefer=True,
            model="gpt2",
        )
