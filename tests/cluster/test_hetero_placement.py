"""Typed machines, typed clusters, and affinity-aware placement."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import GpuType
from repro.cluster.placement import DescendingPlacer

V100 = GpuType("v100", speed_factor=1.0, memory_gb=32.0)
A100 = GpuType("a100", speed_factor=2.0, memory_gb=40.0)


def typed_cluster():
    """Two v100 machines (ids 0-1), two a100 machines (ids 2-3)."""
    return Cluster(4, 4, machine_types=[V100, V100, A100, A100])


class TestTypedCluster:
    def test_machine_types_length_validated(self):
        with pytest.raises(ValueError):
            Cluster(3, 4, machine_types=[V100])

    def test_untyped_cluster_has_no_type_names(self):
        cluster = Cluster(2, 4)
        assert cluster.gpu_type_names() == ()
        assert not cluster.is_heterogeneous
        assert cluster.gpu_type_of_machine(0) is None

    def test_typed_cluster_reports_names(self):
        cluster = typed_cluster()
        assert cluster.gpu_type_names() == ("a100", "v100")
        assert cluster.is_heterogeneous
        assert cluster.gpu_type_of_machine(0) == "v100"
        assert cluster.gpu_type_of_machine(3) == "a100"

    def test_machines_of_type_filters(self):
        cluster = typed_cluster()
        assert [m.machine_id for m in cluster.machines_of_type("a100")] == [2, 3]
        assert cluster.machines_of_type("k80") == []

    def test_machines_of_type_none_returns_all(self):
        cluster = typed_cluster()
        assert len(cluster.machines_of_type(None)) == 4


class TestMachineTypeMatching:
    def test_matches_none_always(self):
        cluster = typed_cluster()
        assert cluster.machine(0).matches_type(None)

    def test_matches_own_type_only(self):
        machine = typed_cluster().machine(2)
        assert machine.matches_type("a100")
        assert not machine.matches_type("v100")

    def test_untyped_machine_matches_nothing_specific(self):
        machine = Cluster(1, 4).machine(0)
        assert machine.matches_type(None)
        assert not machine.matches_type("v100")


class TestAffinityPlacement:
    def test_pin_restricts_to_the_typed_pool(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(cluster, 4, gpu_type="a100")
        assert plan is not None
        assert set(plan) <= {2, 3}

    def test_pin_infeasible_when_pool_exhausted(self):
        cluster = typed_cluster()
        # a100 pool is 8 GPUs; a 9-GPU pin cannot fit even though the
        # cluster as a whole has 16 free.
        assert DescendingPlacer().plan_for(
            cluster, 9, gpu_type="a100"
        ) is None

    def test_prefer_falls_back_to_whole_cluster(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(
            cluster, 9, gpu_type="a100", prefer=True
        )
        assert plan is not None
        assert sum(plan.values()) == 9

    def test_prefer_stays_on_type_when_feasible(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(
            cluster, 4, gpu_type="a100", prefer=True
        )
        assert set(plan) <= {2, 3}

    def test_untyped_plan_unchanged(self):
        cluster = typed_cluster()
        plan = DescendingPlacer().plan_for(cluster, 16)
        assert sum(plan.values()) == 16
