"""Tests for the Cluster allocation layer."""

import pytest

from repro.cluster.cluster import Cluster


def test_paper_default_shape():
    cluster = Cluster()
    assert cluster.total_gpus == 64
    assert len(cluster.machines) == 8


def test_requires_a_machine():
    with pytest.raises(ValueError):
        Cluster(num_machines=0)


def test_allocate_single_machine():
    cluster = Cluster(2, 4)
    allocation = cluster.allocate(owner=1, slot_plan={0: 3})
    assert allocation.num_gpus == 3
    assert allocation.machine_ids == [0]
    assert not allocation.spans_machines
    assert cluster.free_gpus == 5


def test_allocate_spanning_machines():
    cluster = Cluster(2, 4)
    allocation = cluster.allocate(owner=1, slot_plan={0: 4, 1: 2})
    assert allocation.num_gpus == 6
    assert allocation.spans_machines
    assert allocation.machine_ids == [0, 1]


def test_double_allocation_rejected():
    cluster = Cluster(1, 4)
    cluster.allocate(owner=1, slot_plan={0: 1})
    with pytest.raises(ValueError):
        cluster.allocate(owner=1, slot_plan={0: 1})


def test_over_allocation_rejected_atomically():
    cluster = Cluster(2, 2)
    with pytest.raises(ValueError):
        cluster.allocate(owner=1, slot_plan={0: 2, 1: 3})
    assert cluster.free_gpus == 4  # untouched


def test_release():
    cluster = Cluster(2, 4)
    cluster.allocate(owner=5, slot_plan={0: 2, 1: 2})
    cluster.release(5)
    assert cluster.free_gpus == 8
    assert cluster.allocation_of(5) is None


def test_release_unknown_owner():
    with pytest.raises(KeyError):
        Cluster(1, 1).release(9)


def test_release_all():
    cluster = Cluster(2, 4)
    cluster.allocate(owner=1, slot_plan={0: 2})
    cluster.allocate(owner=2, slot_plan={1: 2})
    cluster.release_all()
    assert cluster.free_gpus == 8
    assert list(cluster.allocations()) == []


def test_can_fit():
    cluster = Cluster(2, 4)
    assert cluster.can_fit(8)
    assert not cluster.can_fit(9)
    cluster.allocate(owner=1, slot_plan={0: 4})
    assert cluster.can_fit(4)
    assert not cluster.can_fit(5)


class TestFragmentation:
    def test_empty_cluster_no_fragmentation(self):
        assert Cluster(2, 4).fragmentation() == 0.0

    def test_full_cluster_no_fragmentation(self):
        cluster = Cluster(1, 2)
        cluster.allocate(owner=1, slot_plan={0: 2})
        assert cluster.fragmentation() == 0.0

    def test_partial_machines_are_stranded(self):
        cluster = Cluster(2, 4)
        cluster.allocate(owner=1, slot_plan={0: 1})
        # 3 stranded on machine 0 + 4 clean on machine 1 = 3/7.
        assert cluster.fragmentation() == pytest.approx(3 / 7)
