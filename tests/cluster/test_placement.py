"""Tests for the descending-demand placement policy."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.placement import DescendingPlacer


def test_plan_single_machine_best_fit():
    cluster = Cluster(2, 8)
    cluster.allocate(owner=99, slot_plan={0: 6})  # machine 0 has 2 free
    placer = DescendingPlacer()
    # A 2-GPU group should pick the tighter machine 0, leaving machine 1
    # fully empty for large jobs.
    plan = placer.plan_for(cluster, 2)
    assert plan == {0: 2}


def test_plan_spans_when_needed():
    cluster = Cluster(2, 8)
    cluster.allocate(owner=99, slot_plan={0: 4})
    plan = DescendingPlacer().plan_for(cluster, 10)
    assert sum(plan.values()) == 10
    assert len(plan) == 2
    # Emptiest machine first.
    assert plan[1] == 8


def test_plan_none_when_unfit():
    cluster = Cluster(1, 4)
    assert DescendingPlacer().plan_for(cluster, 5) is None


def test_plan_invalid_demand():
    with pytest.raises(ValueError):
        DescendingPlacer().plan_for(Cluster(1, 4), 0)


def test_place_largest_first():
    cluster = Cluster(2, 4)
    placer = DescendingPlacer()
    plan = placer.place(cluster, [(1, 2), (2, 4), (3, 2)])
    placed_owners = [owner for owner, _ in plan.placed]
    assert placed_owners[0] == 2  # the 4-GPU group went first
    assert set(placed_owners) == {1, 2, 3}
    assert plan.unplaced == ()


def test_place_skips_unfit_but_continues():
    cluster = Cluster(1, 4)
    plan = DescendingPlacer().place(cluster, [(1, 3), (2, 3), (3, 1)])
    owners = {owner for owner, _ in plan.placed}
    assert 1 in owners
    assert 2 in plan.unplaced
    assert 3 in owners  # backfilled past the unfit group


def test_place_minimizes_machines_per_group():
    cluster = Cluster(4, 8)
    plan = DescendingPlacer().place(cluster, [(1, 8), (2, 8)])
    for _owner, allocation in plan.placed:
        assert not allocation.spans_machines


def test_place_avoids_fragmentation():
    # Two 4-GPU groups should share one machine, keeping the other empty.
    cluster = Cluster(2, 8)
    DescendingPlacer().place(cluster, [(1, 4), (2, 4)])
    free_per_machine = sorted(m.free_gpu_count for m in cluster.machines)
    assert free_per_machine == [0, 8]


class TestSpreadPlacer:
    def test_prefers_emptiest(self):
        from repro.cluster.placement import SpreadPlacer

        cluster = Cluster(2, 8)
        cluster.allocate(owner=9, slot_plan={0: 4})
        plan = SpreadPlacer().plan_for(cluster, 2)
        assert plan == {1: 2}

    def test_falls_back_to_span(self):
        from repro.cluster.placement import SpreadPlacer

        cluster = Cluster(2, 4)
        cluster.allocate(owner=9, slot_plan={0: 2, 1: 2})
        plan = SpreadPlacer().plan_for(cluster, 4)
        assert plan is not None
        assert sum(plan.values()) == 4

    def test_unfit(self):
        from repro.cluster.placement import SpreadPlacer

        assert SpreadPlacer().plan_for(Cluster(1, 2), 3) is None


class TestRandomPlacer:
    def test_seeded_determinism(self):
        from repro.cluster.placement import RandomPlacer

        def plans(seed):
            cluster = Cluster(4, 8)
            placer = RandomPlacer(seed=seed)
            return [tuple(placer.plan_for(cluster, 2).items())
                    for _ in range(10)]

        assert plans(3) == plans(3)

    def test_uses_multiple_machines(self):
        from repro.cluster.placement import RandomPlacer

        cluster = Cluster(4, 8)
        placer = RandomPlacer(seed=0)
        chosen = {
            next(iter(placer.plan_for(cluster, 1))) for _ in range(30)
        }
        assert len(chosen) > 1

    def test_unfit(self):
        from repro.cluster.placement import RandomPlacer

        assert RandomPlacer().plan_for(Cluster(1, 2), 3) is None


# -- unplaced ordering and the placed/unplaced partition -------------------

from hypothesis import given, strategies as st

from repro.cluster.placement import RandomPlacer, SpreadPlacer

#: All placement policies share DescendingPlacer.place, so contract
#: tests run against each of them.
PLACERS = [DescendingPlacer, SpreadPlacer, lambda: RandomPlacer(seed=0)]
PLACER_IDS = ["descending", "spread", "random"]


def test_unplaced_keeps_input_order():
    # Regression: unplaced owners came back in descending-GPU visit
    # order, not the input (priority) order the docstring promises.
    cluster = Cluster(1, 4)
    cluster.allocate(owner=99, slot_plan={0: 4})
    plan = DescendingPlacer().place(cluster, [(9, 1), (1, 2)])
    assert plan.placed == ()
    assert plan.unplaced == (9, 1)


def test_unplaced_input_order_with_partial_placement():
    cluster = Cluster(1, 4)
    plan = DescendingPlacer().place(cluster, [(1, 2), (2, 4), (3, 3)])
    assert [owner for owner, _ in plan.placed] == [2]
    assert plan.unplaced == (1, 3)


@pytest.mark.parametrize("make_placer", PLACERS, ids=PLACER_IDS)
def test_backfills_past_unfit_group(make_placer):
    cluster = Cluster(1, 4)
    plan = make_placer().place(cluster, [(1, 3), (2, 3), (3, 1)])
    assert {owner for owner, _ in plan.placed} == {1, 3}
    assert plan.unplaced == (2,)


@pytest.mark.parametrize("make_placer", PLACERS, ids=PLACER_IDS)
@given(
    gpu_counts=st.lists(st.integers(1, 12), max_size=8),
    machines=st.integers(1, 3),
    gpus_per_machine=st.integers(1, 8),
)
def test_place_partitions_demands(
    make_placer, gpu_counts, machines, gpus_per_machine
):
    # Every owner comes back exactly once — either placed or unplaced —
    # and the unplaced tuple preserves the input order.
    cluster = Cluster(machines, gpus_per_machine)
    demands = list(enumerate(gpu_counts, start=1))
    plan = make_placer().place(cluster, demands)
    placed_owners = [owner for owner, _ in plan.placed]
    assert sorted(placed_owners + list(plan.unplaced)) == sorted(
        owner for owner, _ in demands
    )
    unplaced = set(plan.unplaced)
    assert list(plan.unplaced) == [
        owner for owner, _ in demands if owner in unplaced
    ]
