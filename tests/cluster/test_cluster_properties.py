"""Property-based tests for cluster allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.placement import DescendingPlacer


@st.composite
def demand_sequences(draw):
    machines = draw(st.integers(min_value=1, max_value=6))
    gpus = draw(st.integers(min_value=1, max_value=8))
    demands = draw(
        st.lists(
            st.integers(min_value=1, max_value=machines * gpus),
            min_size=0,
            max_size=12,
        )
    )
    return machines, gpus, demands


@settings(max_examples=120, deadline=None)
@given(demand_sequences())
def test_placement_never_overallocates(params):
    machines, gpus, demands = params
    cluster = Cluster(machines, gpus)
    plan = DescendingPlacer().place(
        cluster, [(i, d) for i, d in enumerate(demands)]
    )
    # Capacity conserved.
    assert cluster.allocated_gpus + cluster.free_gpus == cluster.total_gpus
    assert cluster.allocated_gpus == sum(
        allocation.num_gpus for _o, allocation in plan.placed
    )
    # Every placed allocation got exactly what it asked for.
    asked = dict(enumerate(demands))
    for owner, allocation in plan.placed:
        assert allocation.num_gpus == asked[owner]
    # Placed + unplaced covers every demand exactly once.
    owners = [o for o, _a in plan.placed] + list(plan.unplaced)
    assert sorted(owners) == sorted(asked)


@settings(max_examples=120, deadline=None)
@given(demand_sequences())
def test_release_restores_capacity(params):
    machines, gpus, demands = params
    cluster = Cluster(machines, gpus)
    plan = DescendingPlacer().place(
        cluster, [(i, d) for i, d in enumerate(demands)]
    )
    for owner, _allocation in plan.placed:
        cluster.release(owner)
    assert cluster.free_gpus == cluster.total_gpus
    assert list(cluster.allocations()) == []


@settings(max_examples=100, deadline=None)
@given(demand_sequences())
def test_unplaced_only_when_genuinely_unfit(params):
    """A demand is skipped only if, at its placement turn, the free
    capacity could not hold it."""
    machines, gpus, demands = params
    cluster = Cluster(machines, gpus)
    plan = DescendingPlacer().place(
        cluster, [(i, d) for i, d in enumerate(demands)]
    )
    for owner in plan.unplaced:
        # After all placements, the leftover is smaller than the demand
        # (descending order guarantees it was also true at its turn).
        assert demands[owner] > cluster.free_gpus or (
            demands[owner] > max(
                (m.free_gpu_count for m in cluster.machines), default=0
            )
        )
