"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_models(capsys):
    code, out, _err = run(capsys, "models")
    assert code == 0
    for name in ("ShuffleNet", "GPT-2", "A2C", "VGG19"):
        assert name in out


def test_simulate(capsys):
    code, out, _err = run(
        capsys, "simulate", "--trace", "1", "--jobs", "40",
        "--scheduler", "srsf", "--machines", "2",
    )
    assert code == 0
    assert "avg JCT" in out
    assert "SRSF" in out


def test_simulate_writes_result(capsys, tmp_path):
    out_path = tmp_path / "r.json"
    code, out, _err = run(
        capsys, "simulate", "--trace", "3", "--jobs", "30",
        "--scheduler", "fifo", "--out", str(out_path),
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["scheduler_name"] == "FIFO"
    assert len(payload["jcts"]) == 30


def test_simulate_drops_oversized_jobs(capsys):
    code, out, _err = run(
        capsys, "simulate", "--trace", "2", "--jobs", "60",
        "--scheduler", "srsf", "--machines", "1", "--gpus-per-machine", "4",
    )
    assert code == 0
    assert "dropped" in out


def test_simulate_trace_out_chrome(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    code, out, _err = run(
        capsys, "simulate", "--trace", "1", "--jobs", "30",
        "--scheduler", "muri-s", "--machines", "2",
        "--trace-out", str(out_path),
    )
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert len(doc["traceEvents"]) > 10
    assert all("ph" in e and "name" in e for e in doc["traceEvents"])
    # The terminal summary rides along with the file.
    assert "events" in out and "hottest spans" in out


def test_simulate_trace_out_jsonl(capsys, tmp_path):
    out_path = tmp_path / "trace.jsonl"
    code, _out, _err = run(
        capsys, "simulate", "--trace", "1", "--jobs", "30",
        "--scheduler", "muri-s", "--machines", "2",
        "--trace-out", str(out_path),
    )
    assert code == 0
    lines = out_path.read_text().splitlines()
    assert len(lines) > 10
    assert all("name" in json.loads(line) for line in lines)


def test_explain(capsys):
    code, out, _err = run(
        capsys, "explain", "0", "--trace", "1", "--jobs", "30",
        "--scheduler", "muri-s", "--machines", "2",
    )
    assert code == 0
    assert "job 0" in out
    assert "grouping decisions" in out


def test_explain_unknown_job(capsys):
    code, _out, err = run(
        capsys, "explain", "99999", "--trace", "1", "--jobs", "20",
        "--scheduler", "muri-l", "--machines", "2",
    )
    assert code == 2
    assert "no provenance" in err


def test_compare(capsys):
    code, out, _err = run(
        capsys, "compare", "--trace", "1", "--jobs", "40",
        "--schedulers", "srsf,muri-s", "--machines", "2",
    )
    assert code == 0
    assert "SRSF" in out and "Muri-S" in out


def test_compare_normalized(capsys):
    code, out, _err = run(
        capsys, "compare", "--trace", "1", "--jobs", "40",
        "--schedulers", "srsf,muri-s", "--normalize-to", "muri-s",
        "--machines", "2",
    )
    assert code == 0
    assert "normalized to Muri-S" in out


def test_compare_normalize_unknown(capsys):
    code, _out, err = run(
        capsys, "compare", "--trace", "1", "--jobs", "30",
        "--schedulers", "srsf", "--normalize-to", "nope", "--machines", "2",
    )
    assert code == 2
    assert "not among the results" in err


def test_compare_writes_json(capsys, tmp_path):
    out_path = tmp_path / "cmp.json"
    code, _out, _err = run(
        capsys, "compare", "--trace", "3", "--jobs", "30",
        "--schedulers", "fifo,srsf", "--out", str(out_path), "--machines", "2",
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert set(payload["results"]) == {"FIFO", "SRSF"}


def test_experiment_table2(capsys):
    code, out, _err = run(capsys, "experiment", "table2")
    assert code == 0
    assert "TOTAL" in out


def test_experiment_fig13(capsys):
    code, out, _err = run(capsys, "experiment", "fig13", "--jobs", "40")
    assert code == 0
    assert "Muri-L/Tiresias" in out


def test_experiment_unknown_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_trace_generation(capsys, tmp_path):
    out_path = tmp_path / "trace.csv"
    code, out, _err = run(
        capsys, "trace", "--trace", "4", "--jobs", "25", "--out", str(out_path)
    )
    assert code == 0
    assert out_path.exists()
    header = out_path.read_text().splitlines()[0]
    assert header.startswith("job_id,")


def test_unknown_scheduler_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--scheduler", "bogus"])


def test_experiment_table4_small(capsys):
    code, out, _err = run(capsys, "experiment", "table4", "--jobs", "50")
    assert code == 0
    assert "Normalized JCT" in out


def test_experiment_fig11_small(capsys):
    code, out, _err = run(capsys, "experiment", "fig11", "--jobs", "30")
    assert code == 0
    assert "worst ordering" in out


def test_experiment_fig14_small(capsys):
    code, out, _err = run(capsys, "experiment", "fig14", "--jobs", "30")
    assert code == 0
    assert "Makespan" in out


def test_capacity_sweep(capsys):
    code, out, _err = run(
        capsys, "capacity", "--trace", "1", "--jobs", "40",
        "--schedulers", "srsf,muri-s", "--machine-counts", "1,2",
        "--gpus-per-machine", "8",
    )
    assert code == 0
    assert "capacity sweep" in out
    assert "Muri-S" in out


def test_sweep_list(capsys):
    code, out, _err = run(
        capsys, "sweep", "fig9", "--jobs", "30", "--list",
    )
    assert code == 0
    assert "cells" in out
    assert "Muri-S" in out
    # Every cell is selected when no shard is given.
    assert "no" not in out.split()


def test_sweep_list_with_shard(capsys):
    code, out, _err = run(
        capsys, "sweep", "fig9", "--jobs", "30", "--list",
        "--shard", "1/2",
    )
    assert code == 0
    assert "shard 1/2" in out
    words = out.split()
    assert "yes" in words and "no" in words


def test_sweep_runs_and_persists(capsys, tmp_path):
    out_path = tmp_path / "runs.jsonl"
    code, out, _err = run(
        capsys, "sweep", "fig11", "--jobs", "20", "--out", str(out_path),
    )
    assert code == 0
    assert "sweep fig11" in out
    assert "completed 12" in out
    lines = out_path.read_text().splitlines()
    assert len(lines) == 12
    assert all(json.loads(line)["status"] == "ok" for line in lines)


def test_sweep_resume_skips_completed(capsys, tmp_path):
    out_path = tmp_path / "runs.jsonl"
    argv = ("sweep", "fig11", "--jobs", "20", "--out", str(out_path),
            "--resume")
    code, out, _err = run(capsys, *argv)
    assert code == 0
    assert "completed 12" in out

    code, out, _err = run(capsys, *argv)
    assert code == 0
    assert "resumed 12" in out
    assert "completed 0" in out
    # No duplicate lines were appended for resumed runs.
    assert len(out_path.read_text().splitlines()) == 12


def test_sweep_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "bogus"])


def test_fuzz_smoke(capsys, tmp_path):
    code, out, _err = run(
        capsys, "fuzz", "--episodes", "3", "--seed", "0",
        "--out-dir", str(tmp_path / "failures"),
    )
    assert code == 0
    assert "3 episodes" in out
    # A clean campaign writes no repro files.
    assert not (tmp_path / "failures").exists()


def test_fuzz_replay_missing_file(capsys):
    with pytest.raises(FileNotFoundError):
        run(capsys, "fuzz", "--replay", "does-not-exist.json")


def test_fleet_drained_run_with_oracle(capsys):
    code, out, _err = run(
        capsys, "fleet", "--trace", "1", "--jobs", "24",
        "--shards", "2", "--tenants", "2", "--scheduler", "fifo",
        "--verify-shards",
    )
    assert code == 0
    assert "fleet run" in out
    assert "routed to vc0" in out
    assert "routed to vc1" in out
    assert "verified bit-identical" in out


def test_fleet_muri_shards(capsys):
    code, out, _err = run(
        capsys, "fleet", "--trace", "1", "--jobs", "16",
        "--shards", "2", "--scheduler", "muri-s", "--verify-shards",
    )
    assert code == 0
    assert "verified bit-identical" in out


def test_fleet_rejects_bad_shard_count():
    code = main(["fleet", "--machines", "2", "--shards", "3"])
    assert code == 2
