"""Simulator-side resize plumbing: the public API and its guarantees."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.muri import MuriScheduler
from repro.elastic.scheduler import ElasticMuriScheduler
from repro.jobs.job import JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator, SimulationError
from repro.verify.invariants import InvariantChecker

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 second per iteration


def linear_curve(counts=(1, 2, 4)):
    return ScalabilityProfile.from_mapping({
        g: UNIT.scaled(1.0 / g) for g in counts
    })


def elastic_spec(iters=100, gpus=1, submit=0.0, counts=(1, 2, 4)):
    return JobSpec(
        profile=UNIT, num_gpus=gpus, submit_time=submit,
        num_iterations=iters, scalability=linear_curve(counts),
    )


def rigid_spec(iters=100, gpus=1, submit=0.0):
    return JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters)


def simulator(scheduler=None, machines=1, gpus=8, **kwargs):
    defaults = dict(
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
    )
    defaults.update(kwargs)
    return ClusterSimulator(
        scheduler or MuriScheduler(policy="srsf"),
        cluster=Cluster(machines, gpus),
        **defaults,
    )


class TestPublicResize:
    def test_resize_conserves_progress(self):
        sim = simulator()
        spec = elastic_spec(iters=100)
        short = rigid_spec(iters=10)
        state = sim.begin([spec, short])
        # Step until the short job completes, so the elastic job has
        # made partial (non-trivial) progress.
        from repro.jobs.job import JobStatus

        while state.jobs[short.job_id].status is not JobStatus.FINISHED:
            sim.step(state)
        job = state.jobs[spec.job_id]
        remaining = job.remaining_iterations
        assert 0 < remaining < 100
        attained = job.attained_service
        assert sim.resize(state, spec.job_id, 4) is True
        assert job.num_gpus == 4
        assert job.remaining_iterations == remaining
        assert job.attained_service == attained
        assert state.need_reschedule
        assert state.reschedule_reason == "resize"

    def test_resize_to_current_count_is_noop(self):
        sim = simulator()
        spec = elastic_spec()
        state = sim.begin([spec])
        assert sim.resize(state, spec.job_id, spec.num_gpus) is False
        assert not state.need_reschedule

    def test_resized_job_completes(self):
        sim = simulator()
        spec = elastic_spec(iters=100, counts=(1, 2))
        state = sim.begin([spec])
        sim.resize(state, spec.job_id, 2)
        while state.unfinished:
            sim.step(state)
        result = sim.finalize(state)
        # 2 GPUs on a linear curve: half the iteration time.
        assert result.jcts[spec.job_id] == pytest.approx(50.0)

    def test_unknown_job_rejected(self):
        sim = simulator()
        state = sim.begin([elastic_spec()])
        with pytest.raises(SimulationError):
            sim.resize(state, 99999, 2)

    def test_rigid_job_rejected(self):
        sim = simulator()
        spec = rigid_spec()
        state = sim.begin([spec, elastic_spec()])
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 2)

    def test_unsupported_count_rejected(self):
        sim = simulator()
        spec = elastic_spec(counts=(1, 2))
        state = sim.begin([spec])
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 3)

    def test_out_of_range_count_rejected(self):
        sim = simulator(gpus=4)
        spec = elastic_spec()
        state = sim.begin([spec])
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 0)
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 5)

    def test_terminal_job_rejected(self):
        sim = simulator()
        spec = elastic_spec(iters=1)
        state = sim.begin([spec])
        while state.unfinished:
            sim.step(state)
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 2)

    def test_finalized_state_rejected(self):
        sim = simulator()
        spec = elastic_spec(iters=1)
        state = sim.begin([spec])
        while state.unfinished:
            sim.step(state)
        sim.finalize(state)
        with pytest.raises(SimulationError):
            sim.resize(state, spec.job_id, 2)


class TestSchedulerDrivenResize:
    def test_elastic_scheduler_grows_lone_job(self):
        # One elastic job on an idle cluster: renegotiation should
        # grant it the top of its curve and finish ~4x faster.
        sim = simulator(ElasticMuriScheduler())
        spec = elastic_spec(iters=400)
        result = sim.run([spec])
        assert result.jcts[spec.job_id] < 400.0 * 0.5

    def test_resize_events_traced_with_conservation(self):
        checker = InvariantChecker(store_events=True)
        sim = simulator(
            ElasticMuriScheduler(tracer=checker), tracer=checker
        )
        specs = [elastic_spec(iters=300), elastic_spec(iters=300)]
        sim.run(specs)
        assert not checker.violations
        applied = checker.events_named("sched.resize.apply")
        assert applied
        for event in applied:
            assert event.args["remaining_before"] == pytest.approx(
                event.args["remaining_after"]
            )

    def test_resize_counted_on_job(self):
        sim = simulator(ElasticMuriScheduler())
        spec = elastic_spec(iters=400)
        state = sim.begin([spec])
        while state.unfinished:
            sim.step(state)
        sim.finalize(state)
        assert state.jobs[spec.job_id].resizes >= 1
