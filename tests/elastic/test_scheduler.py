"""ElasticMuriScheduler: renegotiation gating and degeneracy."""

import pytest

from repro.elastic.scheduler import ElasticMuriScheduler
from repro.jobs.job import Job, JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile
from repro.observe.tracer import Tracer
from repro.schedulers.registry import available_schedulers, make_scheduler

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def linear_curve(counts=(1, 2, 4)):
    return ScalabilityProfile.from_mapping({
        g: UNIT.scaled(1.0 / g) for g in counts
    })


def rigid_job(iters=100):
    return Job(JobSpec(profile=UNIT, num_gpus=1, num_iterations=iters))


def elastic_job(iters=100, counts=(1, 2, 4)):
    return Job(JobSpec(
        profile=UNIT, num_gpus=1, num_iterations=iters,
        scalability=linear_curve(counts),
    ))


class TestRegistry:
    def test_registered(self):
        names = available_schedulers()
        assert "elastic-muri" in names
        assert "elastic-muri-l" in names

    def test_factory_builds_elastic(self):
        scheduler = make_scheduler("elastic-muri")
        assert isinstance(scheduler, ElasticMuriScheduler)
        assert scheduler.name == "Elastic-Muri-S"
        scheduler = make_scheduler(
            "elastic-muri-l", renegotiation_interval=4
        )
        assert scheduler.renegotiation_interval == 4
        assert scheduler.name == "Elastic-Muri-L"


class TestRenegotiate:
    def test_all_rigid_returns_empty(self):
        scheduler = ElasticMuriScheduler()
        jobs = [rigid_job() for _ in range(4)]
        assert scheduler.renegotiate(0.0, jobs, total_gpus=8) == {}

    def test_flat_profiles_count_as_rigid(self):
        job = Job(JobSpec(
            profile=UNIT, num_gpus=2, num_iterations=10,
            scalability=ScalabilityProfile.flat(2, UNIT),
        ))
        scheduler = ElasticMuriScheduler()
        assert scheduler.renegotiate(0.0, [job], total_gpus=8) == {}

    def test_returns_only_changes(self):
        job = elastic_job()
        scheduler = ElasticMuriScheduler()
        targets = scheduler.renegotiate(0.0, [job], total_gpus=8)
        assert targets == {job.job_id: 4}
        job.resize(4)
        scheduler.notify_resize(job.job_id, 1, 4)
        # Already at target: the next round proposes nothing.
        assert scheduler.renegotiate(0.0, [job], total_gpus=8) == {}

    def test_interval_gates_renegotiation(self):
        scheduler = ElasticMuriScheduler(renegotiation_interval=3)
        jobs = [elastic_job()]
        assert scheduler.renegotiate(0.0, jobs, 8) != {}
        jobs[0].resize(4)
        jobs[0].resize(1)  # dirty the count so a change is available
        assert scheduler.renegotiate(1.0, jobs, 8) == {}
        assert scheduler.renegotiate(2.0, jobs, 8) == {}
        assert scheduler.renegotiate(3.0, jobs, 8) != {}

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            ElasticMuriScheduler(renegotiation_interval=0)

    def test_emits_resize_target_events(self):
        tracer = Tracer()
        scheduler = ElasticMuriScheduler(tracer=tracer)
        job = elastic_job()
        scheduler.renegotiate(0.0, [job], total_gpus=8)
        names = [event.name for event in tracer.events]
        assert "sched.resize.target" in names

    def test_decide_is_inherited_muri(self):
        # Between renegotiations the scheduler is plain Muri: decide
        # groups the (resized) queue with Algorithm 1.
        scheduler = ElasticMuriScheduler()
        jobs = [rigid_job() for _ in range(4)]
        plan = scheduler.decide(0.0, jobs, {}, total_gpus=4)
        placed = sorted(j.job_id for g in plan for j in g.jobs)
        assert placed == sorted(j.job_id for j in jobs)
