"""Decision-cache invalidation on resize, at the sparsify boundaries.

A resize moves a job between GPU buckets; every demand-keyed cache —
the grouper's per-bucket decision cache, the scheduler's plan memo and
overflow carry — must be dropped for the affected buckets or a warm
``decide`` can replay a stale plan.  Each test warms the caches, moves
one job across buckets via ``resize`` + ``notify_resize``, and asserts
the warm plan is signature-identical to a cold scheduler's plan on the
same inputs.

Queue sizes straddle ``sparsify_threshold`` (default 128): 127 keeps
the one-GPU bucket on the dense Blossom path, 128/129 push it onto the
sparse candidate-graph path, so both matchers are exercised.
"""

import random

import pytest

from repro.core.muri import MuriScheduler
from repro.elastic.scheduler import ElasticMuriScheduler
from repro.jobs.job import Job, JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile
from repro.models.zoo import DEFAULT_MODELS, get_model
from repro.verify.differential import plan_signature

TOTAL_GPUS = 64


def make_jobs(n, seed, gpus=1, elastic_every=10):
    """``n`` jobs at ``gpus`` GPUs; every k-th also supports 2x."""
    rng = random.Random(seed)
    jobs = []
    for i in range(n):
        profile = get_model(rng.choice(DEFAULT_MODELS)).stage_profile(1)
        scalability = None
        if i % elastic_every == 0:
            scalability = ScalabilityProfile.from_mapping({
                gpus: profile,
                gpus * 2: profile.scaled(0.6),
            })
        jobs.append(Job(JobSpec(
            profile=profile,
            num_gpus=gpus,
            num_iterations=rng.randint(100, 5000),
            scalability=scalability,
        )))
    return jobs


def resize_and_notify(scheduler, job, new_gpus):
    old = job.resize(new_gpus)
    scheduler.notify_resize(job.job_id, old, new_gpus)


def warm_equals_cold(jobs, mutate, now=600.0):
    """Warm a scheduler, apply ``mutate``, compare against a cold one."""
    warm = MuriScheduler(policy="srsf")
    warm.decide(0.0, jobs, {}, TOTAL_GPUS)
    mutate(warm)
    warm_plan = warm.decide(now, jobs, {}, TOTAL_GPUS)

    cold = MuriScheduler(policy="srsf")
    cold_plan = cold.decide(now, jobs, {}, TOTAL_GPUS)
    assert plan_signature(warm_plan) == plan_signature(cold_plan)
    return warm_plan


class TestSparsifyBoundaries:
    @pytest.mark.parametrize("queue_size", [127, 128, 129])
    def test_resize_invalidates_across_threshold(self, queue_size):
        jobs = make_jobs(queue_size, seed=queue_size)
        elastic = next(j for j in jobs if j.spec.scalability is not None)
        warm_equals_cold(
            jobs,
            lambda sched: resize_and_notify(sched, elastic, 2),
        )
        assert elastic.num_gpus == 2

    @pytest.mark.parametrize("queue_size", [127, 128, 129])
    def test_shrink_back_invalidates_too(self, queue_size):
        jobs = make_jobs(queue_size, seed=queue_size + 1000)
        elastic = next(j for j in jobs if j.spec.scalability is not None)

        def mutate(sched):
            resize_and_notify(sched, elastic, 2)
            sched.decide(300.0, jobs, {}, TOTAL_GPUS)  # re-warm at 2
            resize_and_notify(sched, elastic, 1)

        warm_equals_cold(jobs, mutate)
        assert elastic.num_gpus == 1


class TestCrossBucketInvalidation:
    def test_resize_between_populated_buckets(self):
        # Two populated GPU buckets (2s and 4s); one job migrates from
        # the 2-bucket to the 4-bucket, invalidating both.
        jobs = make_jobs(40, seed=3, gpus=2, elastic_every=8)
        jobs += make_jobs(40, seed=4, gpus=4, elastic_every=10_000)
        elastic = next(j for j in jobs if j.spec.scalability is not None)
        warm_equals_cold(
            jobs,
            lambda sched: resize_and_notify(sched, elastic, 4),
        )
        assert elastic.num_gpus == 4

    def test_untouched_bucket_cache_survives(self):
        # Invalidation is per-bucket: resizing a 1-GPU job must not
        # drop cached matchings for the 8-GPU bucket.
        jobs = make_jobs(150, seed=5)
        jobs += make_jobs(20, seed=6, gpus=8, elastic_every=10_000)
        elastic = next(j for j in jobs if j.spec.scalability is not None)
        scheduler = MuriScheduler(policy="srsf")
        scheduler.decide(0.0, jobs, {}, TOTAL_GPUS)
        cache = scheduler.grouper._decision_cache
        eight_keys = {key for key in cache if key[0] == 8}
        assert eight_keys
        resize_and_notify(scheduler, elastic, 2)
        assert eight_keys <= set(scheduler.grouper._decision_cache)
        one_or_two = {
            key for key in scheduler.grouper._decision_cache
            if key[0] in (1, 2)
        }
        assert not one_or_two


class TestElasticSchedulerMemo:
    def test_plan_memo_cleared_on_resize(self):
        jobs = make_jobs(60, seed=9)
        elastic = next(j for j in jobs if j.spec.scalability is not None)
        scheduler = ElasticMuriScheduler()
        first = scheduler.decide(0.0, jobs, {}, TOTAL_GPUS)
        resize_and_notify(scheduler, elastic, 2)
        second = scheduler.decide(0.0, jobs, {}, TOTAL_GPUS)
        cold = ElasticMuriScheduler()
        cold_plan = cold.decide(0.0, jobs, {}, TOTAL_GPUS)
        assert plan_signature(second) == plan_signature(cold_plan)
        # The resized job's two-GPU demand must be visible in the plan.
        for group in second:
            if any(j.job_id == elastic.job_id for j in group.jobs):
                assert group.num_gpus == 2
