"""ScalabilityProfile: validation, accessors, and curve fitting."""

import pytest

from repro.jobs.job import JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile
from repro.elastic.workload import amdahl_curve, attach_scalability

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 second per iteration


def curve(counts):
    return ScalabilityProfile.from_mapping({
        g: UNIT.scaled(1.0 / g) for g in counts
    })


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScalabilityProfile(())

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            ScalabilityProfile(((0, UNIT),))

    def test_duplicate_counts_rejected(self):
        with pytest.raises(ValueError):
            ScalabilityProfile(((2, UNIT), (2, UNIT.scaled(0.5))))

    def test_mixed_resource_widths_rejected(self):
        narrow = StageProfile((0.5, 0.5))
        with pytest.raises(ValueError):
            ScalabilityProfile(((1, UNIT), (2, narrow)))

    def test_points_normalized_ascending(self):
        profile = ScalabilityProfile(((4, UNIT.scaled(0.25)), (1, UNIT)))
        assert profile.gpu_counts == (1, 4)


class TestAccessors:
    def test_flat_profile(self):
        profile = ScalabilityProfile.flat(2, UNIT)
        assert profile.is_flat
        assert profile.gpu_counts == (2,)
        assert profile.min_gpus == profile.max_gpus == 2
        assert profile.next_step(2) is None
        assert profile.prev_step(2) is None

    def test_steps_and_supports(self):
        profile = curve([1, 2, 4, 8])
        assert profile.supports(4)
        assert not profile.supports(3)
        assert profile.next_step(2) == 4
        assert profile.next_step(3) == 4
        assert profile.prev_step(4) == 2
        assert profile.counts_up_to(5) == (1, 2, 4)

    def test_speedup_relative_to_min(self):
        profile = curve([1, 2, 4])
        assert profile.speedup(1) == pytest.approx(1.0)
        assert profile.speedup(4) == pytest.approx(4.0)
        assert profile.throughput(2) == pytest.approx(2.0)

    def test_unsupported_count_raises(self):
        profile = curve([1, 2])
        with pytest.raises(ValueError):
            profile.profile_for(3)


class TestAmdahlCurve:
    def test_passes_through_operating_point(self):
        spec = JobSpec(profile=UNIT, num_gpus=2, num_iterations=10)
        profile = amdahl_curve(spec, serial_fraction=0.2)
        # The curve reproduces the spec's own profile at its own count.
        assert profile.profile_for(2).durations == UNIT.durations

    def test_diminishing_returns(self):
        spec = JobSpec(profile=UNIT, num_gpus=1, num_iterations=10)
        profile = amdahl_curve(spec, serial_fraction=0.3)
        gain_1_2 = profile.speedup(2) - profile.speedup(1)
        gain_4_8 = profile.speedup(8) - profile.speedup(4)
        # Per-GPU gain shrinks with scale under Amdahl's law.
        assert gain_1_2 > (gain_4_8 / 4)
        assert profile.speedup(8) < 8.0

    def test_serial_fraction_validated(self):
        spec = JobSpec(profile=UNIT, num_iterations=10)
        with pytest.raises(ValueError):
            amdahl_curve(spec, serial_fraction=1.0)


class TestAttachScalability:
    def specs(self, n=40):
        return [
            JobSpec(profile=UNIT, num_gpus=1, num_iterations=10)
            for _ in range(n)
        ]

    def test_deterministic_in_seed(self):
        a = attach_scalability(self.specs(), fraction=0.5, seed=7)
        b = attach_scalability(self.specs(), fraction=0.5, seed=7)
        assert [s.scalability is not None for s in a] == [
            s.scalability is not None for s in b
        ]
        for left, right in zip(a, b):
            if left.scalability is not None:
                assert left.scalability == right.scalability

    def test_fraction_zero_and_one(self):
        none = attach_scalability(self.specs(), fraction=0.0, seed=0)
        assert all(s.scalability is None for s in none)
        everyone = attach_scalability(self.specs(), fraction=1.0, seed=0)
        assert all(s.scalability is not None for s in everyone)

    def test_identity_preserved(self):
        originals = self.specs()
        elastic = attach_scalability(originals, fraction=1.0, seed=0)
        for before, after in zip(originals, elastic):
            assert after.job_id == before.job_id
            assert after.num_gpus == before.num_gpus
            assert after.profile.durations == before.profile.durations

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            attach_scalability(self.specs(), fraction=1.5)
