"""A seeded elastic job stream under the full armed invariant catalog.

The CI ``elastic`` job scales this to a 2000-job stream via
``REPRO_ELASTIC_STREAM_JOBS``; the default stays test-suite sized.
"""

import os

from repro.cluster.cluster import Cluster
from repro.elastic.scheduler import ElasticMuriScheduler
from repro.elastic.workload import attach_scalability
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs
from repro.verify.invariants import InvariantChecker

NUM_JOBS = int(os.environ.get("REPRO_ELASTIC_STREAM_JOBS", "200"))


def test_armed_elastic_stream():
    cluster = Cluster(4, 8)
    trace = generate_trace("2", num_jobs=NUM_JOBS, seed=42)
    specs = [s for s in build_jobs(trace, seed=42)
             if s.num_gpus <= cluster.total_gpus]
    specs = attach_scalability(specs, fraction=0.5, seed=42)

    checker = InvariantChecker()  # strict: raises on first violation
    scheduler = ElasticMuriScheduler(tracer=checker, event_regroup=True)
    simulator = ClusterSimulator(scheduler, cluster=cluster, tracer=checker)
    state = simulator.begin(specs)
    while state.unfinished:
        simulator.step(state)
    result = simulator.finalize(state)

    assert not checker.violations
    assert result.num_jobs == len(specs)
    # The stream must actually exercise the elastic path.
    resizes = sum(job.resizes for job in state.jobs.values())
    assert resizes > 0
