"""GoodputAllocator: deterministic marginal-goodput water-filling."""

from repro.elastic.allocator import GoodputAllocator
from repro.jobs.job import Job, JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def linear_curve(counts):
    """Perfectly linear speedup: every step-up has the same gain."""
    return ScalabilityProfile.from_mapping({
        g: UNIT.scaled(1.0 / g) for g in counts
    })


def rigid_job(gpus=1, iters=100):
    return Job(JobSpec(profile=UNIT, num_gpus=gpus, num_iterations=iters))


def elastic_job(counts=(1, 2, 4), base=1, iters=100, curve=None):
    curve = curve or linear_curve(counts)
    return Job(JobSpec(
        profile=curve.profile_for(base),
        num_gpus=base,
        num_iterations=iters,
        scalability=curve,
    ))


class TestRigidJobs:
    def test_rigid_jobs_keep_their_count(self):
        jobs = [rigid_job(2), rigid_job(4)]
        granted = GoodputAllocator().allocate(jobs, total_gpus=8)
        assert granted == {jobs[0].job_id: 2, jobs[1].job_id: 4}

    def test_flat_profile_is_rigid(self):
        job = Job(JobSpec(
            profile=UNIT, num_gpus=2, num_iterations=10,
            scalability=ScalabilityProfile.flat(2, UNIT),
        ))
        granted = GoodputAllocator().allocate([job], total_gpus=8)
        assert granted == {job.job_id: 2}

    def test_oversubscribed_rigid_job_not_granted(self):
        big, small = rigid_job(8), rigid_job(1)
        granted = GoodputAllocator().allocate([big, small], total_gpus=4)
        # The rigid 8-GPU job cannot fit; the 1-GPU job still lands.
        assert big.job_id not in granted
        assert granted[small.job_id] == 1


class TestWaterFill:
    def test_spare_capacity_grows_elastic_jobs(self):
        job = elastic_job(counts=(1, 2, 4, 8))
        granted = GoodputAllocator().allocate([job], total_gpus=8)
        assert granted[job.job_id] == 8

    def test_capacity_respected(self):
        jobs = [elastic_job(counts=(1, 2, 4)) for _ in range(3)]
        granted = GoodputAllocator().allocate(jobs, total_gpus=6)
        assert sum(granted.values()) <= 6
        assert all(count >= 1 for count in granted.values())

    def test_priority_breaks_gain_ties(self):
        # Two identical linear curves: every step has equal gain, so
        # the earlier (higher-priority) job must win each tie.
        first = elastic_job(counts=(1, 2, 4))
        second = elastic_job(counts=(1, 2, 4))
        granted = GoodputAllocator().allocate([first, second], total_gpus=6)
        assert granted[first.job_id] == 4
        assert granted[second.job_id] == 2

    def test_unfunded_elastic_job_shrinks_to_floor(self):
        hog = rigid_job(4)
        starved = elastic_job(counts=(2, 4), base=4)
        granted = GoodputAllocator().allocate([hog, starved], total_gpus=4)
        # No capacity left, but the elastic job is still shrunk to its
        # minimum so it queues with the smallest possible demand.
        assert granted[starved.job_id] == 2

    def test_min_gain_stops_flat_tails(self):
        # A near-flat tail: 4 GPUs are barely faster than 2.
        curve = ScalabilityProfile.from_speedups(
            1, UNIT, {2: 2.0, 4: 2.0 + 1e-9}
        )
        job = elastic_job(curve=curve)
        granted = GoodputAllocator(min_gain=1e-6).allocate([job], total_gpus=8)
        assert granted[job.job_id] == 2

    def test_deterministic(self):
        jobs = [elastic_job(counts=(1, 2, 4)) for _ in range(5)]
        first = GoodputAllocator().allocate(jobs, total_gpus=11)
        second = GoodputAllocator().allocate(jobs, total_gpus=11)
        assert first == second
