"""The elastic arm's two verification oracles, plus the JCT win.

* flat-profile degeneracy: ``ElasticMuriScheduler`` on an all-rigid
  workload is *bit-identical* to ``MuriScheduler``;
* warm-vs-cold: every elastic decision matches a cold re-solve;
* the point of it all: elastic renegotiation beats fixed Muri-S on
  average JCT for a scalable workload.
"""

import pytest

from repro.elastic.workload import attach_scalability
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs
from repro.verify.elastic import compare_flat_identity, run_elastic_oracle
from repro.verify.invariants import InvariantViolation

NUM_JOBS = 60
CLUSTER = (2, 8)  # 16 GPUs


def workload(num_jobs=NUM_JOBS, seed=0, elastic_fraction=None):
    trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
    specs = [s for s in build_jobs(trace, seed=seed)
             if s.num_gpus <= CLUSTER[0] * CLUSTER[1]]
    if elastic_fraction is not None:
        specs = attach_scalability(
            specs, fraction=elastic_fraction, seed=seed
        )
    return specs


class TestFlatIdentity:
    def test_rigid_workload_bit_identical(self):
        specs = workload()
        baseline, elastic = compare_flat_identity(
            specs, cluster_shape=CLUSTER
        )
        assert baseline.jcts == elastic.jcts
        assert baseline.finish_times == elastic.finish_times

    def test_flat_profiles_bit_identical(self):
        # Single-point profiles are attachable but never resizable.
        specs = workload(elastic_fraction=0.0)
        compare_flat_identity(specs, cluster_shape=CLUSTER)

    def test_non_flat_workload_rejected(self):
        specs = workload(elastic_fraction=0.5)
        with pytest.raises(ValueError):
            compare_flat_identity(specs, cluster_shape=CLUSTER)


class TestWarmVsCold:
    def test_elastic_stream_matches_cold_resolves(self):
        specs = workload(elastic_fraction=0.5)
        result, checks = run_elastic_oracle(specs, cluster_shape=CLUSTER)
        assert checks > 0
        assert result.num_jobs == len(specs)

    def test_interval_renegotiation_matches_cold_resolves(self):
        specs = workload(num_jobs=40, elastic_fraction=0.5)
        result, checks = run_elastic_oracle(
            specs, cluster_shape=CLUSTER, renegotiation_interval=4
        )
        assert checks > 0


class TestElasticWins:
    def test_elastic_beats_rigid_avg_jct(self):
        from repro.sweep.execute import execute_run
        from repro.sweep.spec import RunSpec

        common = dict(
            experiment="elastic-test", trace_id="1", seed=1,
            num_jobs=120, elastic_fraction=0.5,
        )
        rigid = execute_run(RunSpec(
            label="rigid", scheduler="muri-s", **common
        ))
        elastic = execute_run(RunSpec(
            label="elastic", scheduler="elastic-muri", **common
        ))
        assert elastic.avg_jct < rigid.avg_jct
