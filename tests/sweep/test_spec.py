"""RunSpec identity: stable run ids, canonical options, sharding."""

import pytest

from repro.sweep import RunResult, RunSpec, in_shard, parse_shard
from repro.sweep.cells import experiment_cells


def _spec(**overrides):
    base = dict(
        experiment="test",
        label="A",
        scheduler="fifo",
        trace_id="1",
        seed=0,
        num_jobs=10,
    )
    base.update(overrides)
    return RunSpec(**base)


def test_run_id_is_stable_across_instances():
    assert _spec().run_id == _spec().run_id


def test_run_id_changes_with_every_identity_field():
    base = _spec().run_id
    assert _spec(seed=1).run_id != base
    assert _spec(trace_id="2").run_id != base
    assert _spec(scheduler="sjf").run_id != base
    assert _spec(num_jobs=11).run_id != base
    assert _spec(experiment="other").run_id != base
    assert _spec(noise_level=0.2).run_id != base
    assert _spec(scheduler_options={"max_group_size": 2}).run_id != base


def test_option_order_does_not_change_the_id():
    a = _spec(scheduler_options={"x": 1, "y": 2})
    b = _spec(scheduler_options={"y": 2, "x": 1})
    c = _spec(scheduler_options=(("y", 2), ("x", 1)))
    assert a.run_id == b.run_id == c.run_id
    assert a.scheduler_options == (("x", 1), ("y", 2))


def test_spec_round_trips_through_dict():
    spec = _spec(
        models=("VGG19", "GPT-2"),
        scheduler_options={"max_group_size": 3},
        busiest_interval=5,
        noise_level=0.4,
    )
    clone = RunSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.run_id == spec.run_id


def test_result_round_trips_through_dict():
    spec = _spec()
    result = RunResult(
        run_id=spec.run_id,
        spec=spec,
        status="error",
        error="boom",
        attempts=3,
        wall_clock=1.5,
    )
    clone = RunResult.from_dict(result.to_dict())
    assert clone == result
    assert not clone.ok


def test_parse_shard_forms():
    assert parse_shard(None) is None
    assert parse_shard("1/3") == (0, 3)
    assert parse_shard("3/3") == (2, 3)
    assert parse_shard((1, 4)) == (1, 4)


@pytest.mark.parametrize("bad", ["0/3", "4/3", "x/3", "3", "1/0"])
def test_parse_shard_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_shard(bad)


def test_shards_partition_every_cell_grid():
    """Shards are disjoint and jointly exhaustive for any n."""
    cells = experiment_cells("all", num_jobs=20)
    ids = [cell.run_id for cell in cells]
    assert len(set(ids)) == len(ids)
    for count in (1, 2, 3, 7):
        buckets = [
            [rid for rid in ids if in_shard(rid, (index, count))]
            for index in range(count)
        ]
        assert sorted(sum(buckets, [])) == sorted(ids)
        for index, bucket in enumerate(buckets):
            for other in buckets[index + 1:]:
                assert not set(bucket) & set(other)
