"""The hetero sweep arm: cells, execution, and run-id stability."""

import pytest

from repro.sweep.cells import experiment_cells, hetero_cells
from repro.sweep.execute import build_workload, execute_run
from repro.sweep.spec import RunSpec


class TestHeteroCells:
    def test_three_arms_one_workload(self):
        cells = hetero_cells(num_jobs=40)
        assert [cell.label for cell in cells] == [
            "FIFO", "Muri-S", "Muri-S + aware"
        ]
        assert [cell.scheduler for cell in cells] == [
            "fifo", "muri-s", "muri-s"
        ]
        assert [cell.placement for cell in cells] == [None, None, "aware"]
        # Same experiment, trace, mix, and seed — placement/scheduler
        # is the only axis.
        assert {cell.experiment for cell in cells} == {"hetero"}
        assert {cell.hetero_types for cell in cells} == {("k80", "a100")}
        assert len({cell.run_id for cell in cells}) == 3

    def test_artifact_is_sweepable_but_not_in_all(self):
        assert [
            cell.experiment for cell in experiment_cells("hetero", num_jobs=20)
        ] == ["hetero"] * 3
        assert all(
            cell.experiment != "hetero"
            for cell in experiment_cells("all", num_jobs=20)
        )

    def test_philly_csv_routes_through_the_adapter(self, tmp_path):
        from repro.trace import generate_trace, write_philly_csv

        path = tmp_path / "dump.csv"
        write_philly_csv(generate_trace("1", num_jobs=30, seed=0), path)
        cells = experiment_cells(
            "hetero", num_jobs=20, philly_csv=str(path)
        )
        assert {cell.trace_path for cell in cells} == {str(path)}
        trace_name, specs = build_workload(cells[0])
        assert 0 < len(specs) <= 20

    def test_synthetic_cells_carry_no_path(self):
        assert {cell.trace_path for cell in hetero_cells(num_jobs=20)} == {
            None
        }


class TestHeteroExecution:
    def test_typed_run_reports_per_generation_occupancy(self):
        spec = hetero_cells(num_jobs=24, seed=0)[1]  # Muri-S, default placer
        result = execute_run(spec)
        assert len(result.jcts) == 24
        assert set(result.gpus_by_type) == {"k80", "a100"}
        utilization = result.utilization_by_type()
        assert set(utilization) == {"k80", "a100"}
        for value in utilization.values():
            assert 0.0 < value <= 1.0
        # Occupancy survives the worker serialization boundary.
        restored = type(result).from_dict(result.to_dict())
        assert restored.utilization_by_type() == utilization

    def test_aware_cell_executes(self):
        spec = hetero_cells(num_jobs=24, seed=0)[2]
        result = execute_run(spec)
        assert len(result.jcts) == 24

    def test_unknown_placement_rejected(self):
        spec = RunSpec(
            experiment="hetero", label="x", scheduler="fifo",
            trace_id="1", seed=0, num_jobs=4, placement="spread-out",
        )
        with pytest.raises(ValueError, match="placement"):
            execute_run(spec)

    def test_untyped_run_serializes_no_occupancy_keys(self):
        spec = RunSpec(
            experiment="fig9", label="x", scheduler="fifo",
            trace_id="1", seed=0, num_jobs=6, machines=2,
            gpus_per_machine=4,
        )
        payload = execute_run(spec).to_dict()
        assert "gpu_seconds_by_type" not in payload
        assert "gpus_by_type" not in payload


class TestRunIdStability:
    """The four new spec fields must not disturb pre-hetero run ids."""

    LEGACY_PAYLOAD = {
        "experiment": "fig9",
        "label": "Muri-S",
        "scheduler": "muri-s",
        "trace_id": "1",
        "seed": 0,
        "num_jobs": 400,
        "at_time_zero": False,
        "busiest_interval": None,
        "models": None,
        "noise_level": None,
        "machines": 8,
        "gpus_per_machine": 8,
        "scheduler_options": {},
        "sim_options": {},
    }

    def test_defaults_omit_the_new_fields(self):
        spec = RunSpec.from_dict(self.LEGACY_PAYLOAD)
        payload = spec.to_dict()
        for key in (
            "hetero_types", "prefer_fraction", "placement", "trace_path"
        ):
            assert key not in payload

    def test_legacy_payload_and_fresh_spec_share_a_run_id(self):
        legacy = RunSpec.from_dict(self.LEGACY_PAYLOAD)
        fresh = RunSpec(
            experiment="fig9", label="Muri-S", scheduler="muri-s",
            trace_id="1", seed=0, num_jobs=400,
        )
        assert legacy.run_id == fresh.run_id

    def test_set_fields_do_join_the_run_id(self):
        base = hetero_cells(num_jobs=40)[1]
        aware = hetero_cells(num_jobs=40)[2]
        assert base.run_id != aware.run_id
        payload = aware.to_dict()
        assert payload["placement"] == "aware"
        assert payload["hetero_types"] == ["k80", "a100"]
        assert RunSpec.from_dict(payload) == aware
