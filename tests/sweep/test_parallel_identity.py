"""Acceptance tests from the sweep issue.

1. A 4-worker sweep produces results identical (per run id) to the
   serial path — parallelism must not change the science.
2. A sweep killed mid-flight resumes from its JSONL store without
   re-executing completed runs, even when the kill left a half-written
   final line.
"""

import json
import multiprocessing

import repro.sweep.execute as execute_module
import repro.sweep.runner as runner_module
from repro.analysis.experiments import simulation_comparison
from repro.sweep import ResultStore, SweepRunner, simulation_cells

FORK = multiprocessing.get_context("fork")

TRACE_IDS = ("1", "2")
NUM_JOBS = 40


def _payload_without_wall_clock(run):
    payload = dict(run.result)
    payload.pop("wall_clock", None)
    return payload


def test_four_worker_sweep_matches_serial_per_run_id():
    cells = simulation_cells(
        duration_known=True, trace_ids=TRACE_IDS, num_jobs=NUM_JOBS,
    )
    serial = SweepRunner(max_workers=1).run(cells)
    pooled = SweepRunner(max_workers=4, mp_context=FORK).run(cells)

    assert set(serial) == set(pooled) == {cell.run_id for cell in cells}
    for run_id in serial:
        assert serial[run_id].ok and pooled[run_id].ok
        assert _payload_without_wall_clock(
            serial[run_id]
        ) == _payload_without_wall_clock(pooled[run_id])


def test_simulation_comparison_identical_through_the_runner():
    serial = simulation_comparison(
        duration_known=True, trace_ids=TRACE_IDS, num_jobs=NUM_JOBS,
    )
    runner = SweepRunner(max_workers=2, mp_context=FORK)
    pooled = simulation_comparison(
        duration_known=True, trace_ids=TRACE_IDS, num_jobs=NUM_JOBS,
        runner=runner,
    )
    # {trace_id: {baseline: {metric: speedup}}} — must match exactly.
    assert serial == pooled


def test_killed_sweep_resumes_without_reexecuting(tmp_path, monkeypatch):
    cells = simulation_cells(
        duration_known=True, trace_ids=("1",), num_jobs=20,
    )
    assert len(cells) >= 3
    path = tmp_path / "runs.jsonl"

    # First pass: complete the full sweep to get real persisted lines.
    SweepRunner(store=ResultStore(path)).run(cells)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == len(cells)

    # Simulate a kill mid-append: keep the first result intact and
    # leave the second as a half-written line.
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(lines[0] + "\n")
        handle.write(lines[1][: len(lines[1]) // 2])

    executed = []
    real_execute = execute_module.execute_run

    def counting_execute(spec):
        executed.append(spec.run_id)
        return real_execute(spec)

    monkeypatch.setattr(runner_module, "execute_run", counting_execute)
    store = ResultStore(path)
    results = SweepRunner(store=store, resume=True).run(cells)

    # The truncated line was discarded, the intact run was reused, and
    # everything else — including the half-written victim — re-ran.
    survivor = json.loads(lines[0])["run_id"]
    assert store.truncated_lines == 1
    assert survivor not in executed
    assert sorted(executed) == sorted(
        cell.run_id for cell in cells if cell.run_id != survivor
    )
    assert results[survivor].resumed
    assert set(results) == {cell.run_id for cell in cells}
    assert all(run.ok for run in results.values())
