"""Tests for the repro.sweep package."""
