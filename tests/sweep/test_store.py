"""ResultStore: durable appends, tolerant loads, resume bookkeeping."""

import json

import pytest

from repro.sweep import ResultStore, RunResult, RunSpec


def _result(label="A", status="ok", seed=0):
    spec = RunSpec(
        experiment="test", label=label, scheduler="fifo",
        trace_id="1", seed=seed, num_jobs=5,
    )
    payload = None
    if status == "ok":
        payload = {"format_version": 1, "scheduler_name": "fifo",
                   "trace_name": "t", "jcts": {"0": 1.0},
                   "finish_times": {"0": 1.0}, "submit_times": {"0": 0.0},
                   "total_preemptions": 0, "total_restart_time": 0.0,
                   "wall_clock": 0.0, "timeseries": []}
    return RunResult(
        run_id=spec.run_id, spec=spec, status=status,
        result=payload, error=None if status == "ok" else "boom",
    )


def test_append_load_round_trip(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    first, second = _result(seed=0), _result(seed=1)
    store.append(first)
    store.append(second)
    loaded = {r.run_id: r for r in store.load()}
    assert loaded == {first.run_id: first, second.run_id: second}
    assert store.truncated_lines == 0


def test_missing_file_loads_empty(tmp_path):
    store = ResultStore(tmp_path / "absent.jsonl")
    assert store.load() == []
    assert store.completed_ids() == set()


def test_later_lines_win_per_run_id(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    store.append(_result(status="error"))
    store.append(_result(status="ok"))
    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0].ok
    assert store.completed_ids() == {loaded[0].run_id}


def test_truncated_final_line_is_tolerated(tmp_path):
    """A kill mid-append leaves a half-written last line; load must
    skip it and keep everything before it."""
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    keep = _result(seed=0)
    lost = _result(seed=1)
    store.append(keep)
    full_line = json.dumps(lost.to_dict())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(full_line[: len(full_line) // 2])

    loaded = store.load()
    assert [r.run_id for r in loaded] == [keep.run_id]
    assert store.truncated_lines == 1
    assert store.completed_ids() == {keep.run_id}


def test_corruption_before_the_final_line_raises(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    store.append(_result(seed=0))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{definitely not json\n")
    store.append(_result(seed=1))
    with pytest.raises(ValueError, match="corrupt"):
        store.load()


def test_completed_ids_exclude_errors(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    ok, bad = _result(seed=0, status="ok"), _result(seed=1, status="error")
    store.append(ok)
    store.append(bad)
    assert store.completed_ids() == {ok.run_id}


def test_clear_removes_the_file(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    store.append(_result())
    store.clear()
    assert not store.path.exists()
    store.clear()  # idempotent
