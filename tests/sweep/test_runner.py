"""SweepRunner: serial/pooled execution, resume, shards, fault handling.

The pooled tests monkeypatch the worker's execute function and pin the
``fork`` start method, so patched modules are inherited by the pool's
children — that lets the tests crash and hang "simulations" cheaply.
"""

import multiprocessing
import os
import time

import pytest

import repro.sweep.execute as execute_module
import repro.sweep.runner as runner_module
from repro.cluster.cluster import Cluster
from repro.observe import Tracer
from repro.schedulers.registry import make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sweep import PrebuiltCell, ResultStore, RunSpec, SweepRunner
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

FORK = multiprocessing.get_context("fork")


def _spec(label="A", seed=0):
    return RunSpec(
        experiment="test", label=label, scheduler="fifo",
        trace_id="1", seed=seed, num_jobs=5,
    )


def _fake_sim(spec):
    """A deterministic stand-in result derived from the spec."""
    return SimulationResult(
        scheduler_name=spec.scheduler,
        trace_name=spec.trace_id,
        jcts={0: 1.0 + spec.seed},
        finish_times={0: 1.0 + spec.seed},
        submit_times={0: 0.0},
    )


def _crash_on_crash_label(spec):
    if spec.label == "crash":
        os._exit(13)
    return _fake_sim(spec)


def _hang_on_hang_label(spec):
    if spec.label == "hang":
        time.sleep(60.0)
    return _fake_sim(spec)


def _patch_execute(monkeypatch, fake):
    # The serial path calls the runner module's reference, the pooled
    # path resolves the execute module's global inside the worker.
    monkeypatch.setattr(runner_module, "execute_run", fake)
    monkeypatch.setattr(execute_module, "execute_run", fake)


# -- serial path ------------------------------------------------------------

def test_serial_executes_in_submission_order(monkeypatch):
    order = []

    def fake(spec):
        order.append(spec.label)
        return _fake_sim(spec)

    _patch_execute(monkeypatch, fake)
    specs = [_spec(label) for label in ("C", "A", "B")]
    results = SweepRunner().run(specs)
    assert order == ["C", "A", "B"]
    assert list(results) == [spec.run_id for spec in specs]
    assert all(run.ok for run in results.values())


def test_duplicate_run_ids_rejected():
    spec = _spec()
    with pytest.raises(ValueError, match="duplicate run ids"):
        SweepRunner().run([spec, spec])


def test_serial_records_deterministic_errors(monkeypatch, tmp_path):
    def fake(spec):
        if spec.label == "bad":
            raise ValueError("deliberately broken cell")
        return _fake_sim(spec)

    _patch_execute(monkeypatch, fake)
    store = ResultStore(tmp_path / "runs.jsonl")
    specs = [_spec("good"), _spec("bad")]
    results = SweepRunner(store=store).run(specs)
    assert results[specs[0].run_id].ok
    bad = results[specs[1].run_id]
    assert not bad.ok
    assert "deliberately broken cell" in bad.error
    # Both outcomes were persisted as they finished.
    assert {r.run_id for r in store.load()} == {s.run_id for s in specs}


def test_resume_skips_completed_runs(monkeypatch, tmp_path):
    calls = []

    def fake(spec):
        calls.append(spec.label)
        return _fake_sim(spec)

    _patch_execute(monkeypatch, fake)
    store = ResultStore(tmp_path / "runs.jsonl")
    specs = [_spec("A"), _spec("B"), _spec("C")]

    SweepRunner(store=store).run(specs[:2])
    assert calls == ["A", "B"]

    tracer = Tracer()
    results = SweepRunner(store=store, tracer=tracer).run(specs)
    assert calls == ["A", "B", "C"]  # only the missing cell ran
    assert len(results) == 3
    assert results[specs[0].run_id].resumed
    assert results[specs[1].run_id].resumed
    assert not results[specs[2].run_id].resumed
    assert tracer.counters["sweep.runs.resumed"] == 2
    assert tracer.counters["sweep.runs.completed"] == 1


def test_resume_false_starts_fresh(monkeypatch, tmp_path):
    calls = []

    def fake(spec):
        calls.append(spec.label)
        return _fake_sim(spec)

    _patch_execute(monkeypatch, fake)
    store = ResultStore(tmp_path / "runs.jsonl")
    specs = [_spec("A")]
    SweepRunner(store=store).run(specs)
    SweepRunner(store=store, resume=False).run(specs)
    assert calls == ["A", "A"]


def test_stored_errors_are_retried_on_resume(monkeypatch, tmp_path):
    attempts = []

    def flaky(spec):
        attempts.append(spec.label)
        if len(attempts) == 1:
            raise RuntimeError("first time fails")
        return _fake_sim(spec)

    _patch_execute(monkeypatch, flaky)
    store = ResultStore(tmp_path / "runs.jsonl")
    specs = [_spec("A")]
    first = SweepRunner(store=store).run(specs)
    assert not first[specs[0].run_id].ok
    second = SweepRunner(store=store).run(specs)
    assert second[specs[0].run_id].ok
    assert attempts == ["A", "A"]


def test_shards_split_the_work(monkeypatch):
    executed = []

    def fake(spec):
        executed.append(spec.run_id)
        return _fake_sim(spec)

    _patch_execute(monkeypatch, fake)
    specs = [_spec(label, seed) for seed, label in enumerate("ABCDEFG")]
    all_ids = {spec.run_id for spec in specs}

    collected = set()
    for shard in ("1/3", "2/3", "3/3"):
        results = SweepRunner(shard=shard).run(specs)
        assert set(results) <= all_ids
        assert not collected & set(results)
        collected |= set(results)
    assert collected == all_ids
    assert sorted(executed) == sorted(all_ids)


def test_validation():
    with pytest.raises(ValueError):
        SweepRunner(max_workers=0)
    with pytest.raises(ValueError):
        SweepRunner(timeout=0)
    with pytest.raises(ValueError):
        SweepRunner(retries=-1)
    with pytest.raises(ValueError):
        SweepRunner(backoff=-0.1)


# -- pooled path ------------------------------------------------------------

def test_pooled_matches_serial_fake_payloads(monkeypatch):
    _patch_execute(monkeypatch, _fake_sim)
    specs = [_spec(label, seed) for seed, label in enumerate("ABCD")]
    serial = SweepRunner().run(specs)
    pooled = SweepRunner(max_workers=2, mp_context=FORK).run(specs)
    for spec in specs:
        a = dict(serial[spec.run_id].result)
        b = dict(pooled[spec.run_id].result)
        a.pop("wall_clock"), b.pop("wall_clock")
        assert a == b


def test_crashed_worker_is_retried_then_failed(monkeypatch):
    _patch_execute(monkeypatch, _crash_on_crash_label)
    tracer = Tracer()
    specs = [_spec("good-1", 1), _spec("crash", 2), _spec("good-2", 3)]
    runner = SweepRunner(
        max_workers=2, retries=1, backoff=0.0,
        mp_context=FORK, tracer=tracer,
    )
    results = runner.run(specs)
    assert results[specs[0].run_id].ok
    assert results[specs[2].run_id].ok
    crashed = results[specs[1].run_id]
    assert not crashed.ok
    assert "worker process died" in crashed.error
    assert crashed.attempts == 2
    assert tracer.counters["sweep.runs.retried"] >= 1
    assert tracer.counters["sweep.runs.failed"] == 1


def test_hung_worker_times_out(monkeypatch):
    _patch_execute(monkeypatch, _hang_on_hang_label)
    tracer = Tracer()
    specs = [_spec("hang"), _spec("good", 1)]
    runner = SweepRunner(
        max_workers=2, timeout=1.0, retries=0, backoff=0.0,
        mp_context=FORK, tracer=tracer,
    )
    start = time.monotonic()
    results = runner.run(specs)
    elapsed = time.monotonic() - start
    hung = results[specs[0].run_id]
    assert not hung.ok
    assert "timed out" in hung.error
    assert results[specs[1].run_id].ok
    assert tracer.counters["sweep.runs.timeout"] == 1
    assert elapsed < 30.0  # nowhere near the worker's 60s sleep


# -- prebuilt cells ---------------------------------------------------------

def _tiny_workload():
    trace = generate_trace("1", num_jobs=8, seed=0)
    return trace, build_jobs(trace, seed=0)


def test_prebuilt_cells_run_real_simulations():
    trace, specs = _tiny_workload()
    cells = [
        PrebuiltCell(
            label=name,
            specs=tuple(specs),
            scheduler=make_scheduler(name),
            cluster=Cluster(2, 4),
            trace_name=trace.name,
        )
        for name in ("fifo", "sjf")
    ]
    results = SweepRunner().run_prebuilt(cells)
    assert set(results) == {"fifo", "sjf"}
    for run in results.values():
        assert run.ok
        assert run.simulation_result().num_jobs == len(specs)


def test_prebuilt_duplicate_labels_rejected():
    trace, specs = _tiny_workload()
    cell = PrebuiltCell(
        label="fifo", specs=tuple(specs),
        scheduler=make_scheduler("fifo"), cluster=Cluster(2, 4),
        trace_name=trace.name,
    )
    with pytest.raises(ValueError, match="unique"):
        SweepRunner().run_prebuilt([cell, cell])
