"""Differential test: optimized blossom vs the verbatim reference.

``repro.matching.blossom`` is a flat-array optimization of Galil's
primal-dual algorithm; ``repro.matching.blossom_reference`` keeps the
textbook dict-based structure.  Both must produce matchings of equal
weight (and equal cardinality under ``max_cardinality``) on every
graph — the matching itself may differ when optima tie, so the check
compares objective values, which is what grouping consumes.
"""

import random

import pytest

from repro.matching.blossom import matching_weight, max_weight_matching
from repro.matching.blossom_reference import reference_max_weight_matching


def _as_pairs(mate):
    """Canonical pair set from a mate list/dict."""
    pairs = set()
    for u, v in enumerate(mate):
        if v >= 0 and u < v:
            pairs.add((u, v))
    return pairs


def _random_graph(rng, n, integer_weights, density=1.0):
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() > density:
                continue
            if integer_weights:
                weight = rng.randint(0, 20)
            else:
                weight = round(rng.uniform(0.0, 1.0), 6)
            edges.append((u, v, weight))
    return edges


@pytest.mark.parametrize("integer_weights", [True, False])
@pytest.mark.parametrize("max_cardinality", [False, True])
def test_optimized_matches_reference_weight(integer_weights, max_cardinality):
    rng = random.Random(7 if integer_weights else 8)
    for trial in range(30):
        n = rng.randint(2, 12)
        edges = _random_graph(rng, n, integer_weights, density=0.8)
        fast = max_weight_matching(edges, max_cardinality=max_cardinality)
        slow = reference_max_weight_matching(
            edges, max_cardinality=max_cardinality
        )
        # The optimized kernel is a data-layout refactor of the same
        # algorithm, so the whole mate array — not just the objective —
        # must be identical.
        assert list(fast) == list(slow), (trial, edges)


def test_tied_weights_agree():
    """All-equal weights: maximum tie-break ambiguity, still identical."""
    rng = random.Random(99)
    for _ in range(10):
        n = rng.randint(4, 10)
        edges = _random_graph(rng, n, integer_weights=False, density=1.0)
        edges = [(u, v, 1.0) for u, v, _ in edges]
        fast = max_weight_matching(edges)
        slow = reference_max_weight_matching(edges)
        assert list(fast) == list(slow)
        assert matching_weight(edges, _as_pairs(fast)) == matching_weight(
            edges, _as_pairs(slow)
        )


def test_dense_efficiency_style_weights():
    """The grouping regime: dense graphs, float weights in (0, 1]."""
    rng = random.Random(5)
    for n in (16, 24):
        edges = _random_graph(rng, n, integer_weights=False, density=1.0)
        assert list(max_weight_matching(edges)) == list(
            reference_max_weight_matching(edges)
        )


def test_empty_and_trivial():
    assert _as_pairs(max_weight_matching([])) == set()
    assert _as_pairs(reference_max_weight_matching([])) == set()
    single = [(0, 1, 3.0)]
    assert _as_pairs(max_weight_matching(single)) == _as_pairs(
        reference_max_weight_matching(single)
    )
