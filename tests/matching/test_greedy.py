"""Tests for the greedy matchers (the "w/o Blossom" ablation arm)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.blossom import matching_pairs, matching_weight
from repro.matching.greedy import greedy_matching, sequential_pair_matching


class TestGreedyMatching:
    def test_empty(self):
        assert greedy_matching([]) == set()

    def test_takes_heaviest_first(self):
        edges = [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)]
        assert greedy_matching(edges) == {(1, 2)}

    def test_skips_nonpositive(self):
        assert greedy_matching([(0, 1, 0.0), (2, 3, -1.0)]) == set()

    def test_skips_self_loops(self):
        assert greedy_matching([(1, 1, 9.0), (0, 1, 2.0)]) == {(0, 1)}

    def test_deterministic_tie_break(self):
        edges = [(0, 1, 1.0), (2, 3, 1.0), (0, 2, 1.0)]
        assert greedy_matching(edges) == greedy_matching(list(reversed(edges)))

    def test_can_be_suboptimal(self):
        # Greedy grabs the 10 edge, blocking two 9s.
        edges = [(1, 2, 10.0), (0, 1, 9.0), (2, 3, 9.0)]
        greedy = greedy_matching(edges)
        optimal = matching_pairs(edges)
        assert matching_weight(edges, greedy) == 10.0
        assert matching_weight(edges, optimal) == 18.0


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return [(u, v, w) for (u, v), w in zip(chosen, weights)]


@settings(max_examples=120, deadline=None)
@given(random_graphs())
def test_greedy_half_approximation(edges):
    """Greedy achieves at least half the optimal matched weight."""
    greedy_weight = matching_weight(edges, greedy_matching(edges))
    optimal_weight = matching_weight(edges, matching_pairs(edges))
    assert greedy_weight * 2 >= optimal_weight - 1e-9


@settings(max_examples=80, deadline=None)
@given(random_graphs())
def test_greedy_matching_is_valid(edges):
    seen = set()
    for u, v in greedy_matching(edges):
        assert u not in seen and v not in seen
        seen.update((u, v))


class TestSequentialPairing:
    def test_even(self):
        assert sequential_pair_matching([5, 3, 8, 1]) == [(5, 3), (8, 1)]

    def test_odd_leaves_tail(self):
        assert sequential_pair_matching([1, 2, 3]) == [(1, 2)]

    def test_empty_and_single(self):
        assert sequential_pair_matching([]) == []
        assert sequential_pair_matching([7]) == []


class TestOrientationIndependence:
    def test_shuffled_and_flipped_edges_agree(self):
        """The ranking key is orientation- and input-order-free."""
        import random

        rng = random.Random(3)
        n = 9
        edges = [
            (u, v, rng.choice([1.0, 2.0, 3.0]))
            for u in range(n)
            for v in range(u + 1, n)
        ]
        expected = greedy_matching(edges)
        for trial in range(10):
            mutated = [
                (v, u, w) if rng.random() < 0.5 else (u, v, w)
                for u, v, w in edges
            ]
            rng.shuffle(mutated)
            assert greedy_matching(mutated) == expected, trial
