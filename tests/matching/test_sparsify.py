"""Tests for the bounded-degree candidate graph builder."""

import pytest

from repro.matching.sparsify import (
    SparsifyConfig,
    node_signature,
    sparse_candidate_edges,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = SparsifyConfig()
        assert config.threshold >= 2
        assert config.probe_limit >= config.max_degree

    def test_threshold_too_small(self):
        with pytest.raises(ValueError):
            SparsifyConfig(threshold=1)

    def test_zero_degree(self):
        with pytest.raises(ValueError):
            SparsifyConfig(max_degree=0)

    def test_probe_limit_below_degree(self):
        with pytest.raises(ValueError):
            SparsifyConfig(max_degree=8, probe_limit=4)

    def test_bad_bin_base(self):
        with pytest.raises(ValueError):
            SparsifyConfig(duration_bin_base=1.0)


class TestNodeSignature:
    def test_bottleneck_index(self):
        assert node_signature([0.1, 0.7, 0.1, 0.1])[0] == 1

    def test_duration_bin_is_log_scale(self):
        # totals 2 and 3.9 share a bin at base 2; 2 and 4.1 do not.
        assert (
            node_signature([2.0, 0, 0, 0])[1]
            == node_signature([3.9, 0, 0, 0])[1]
        )
        assert (
            node_signature([2.0, 0, 0, 0])[1]
            != node_signature([4.1, 0, 0, 0])[1]
        )

    def test_zero_total(self):
        assert node_signature([0.0, 0.0]) == (0, 0)

    def test_coarser_base_merges_bins(self):
        fine = {node_signature([t, 0, 0, 0], 2.0)[1] for t in (1, 3, 9, 27)}
        coarse = {node_signature([t, 0, 0, 0], 100.0)[1] for t in (1, 3, 9, 27)}
        assert len(coarse) < len(fine)


def _signatures(n):
    # Four bottleneck classes, two duration bins.
    return [(i % 4, (i // 4) % 2) for i in range(n)]


class TestSparseCandidateEdges:
    def test_edges_are_ordered_and_unique(self):
        edges = sparse_candidate_edges(
            _signatures(40), lambda i, j: 1.0 / (1 + abs(i - j))
        )
        assert all(u < v for u, v, _w in edges)
        assert len({(u, v) for u, v, _w in edges}) == len(edges)

    def test_weights_come_from_the_oracle(self):
        edges = sparse_candidate_edges(
            _signatures(40), lambda i, j: float(i * 100 + j)
        )
        for u, v, w in edges:
            assert w == float(u * 100 + v)

    def test_deterministic(self):
        first = sparse_candidate_edges(
            _signatures(64), lambda i, j: 1.0 / (1 + abs(i - j))
        )
        second = sparse_candidate_edges(
            _signatures(64), lambda i, j: 1.0 / (1 + abs(i - j))
        )
        assert first == second

    def test_per_node_probe_and_degree_bounds(self):
        config = SparsifyConfig(threshold=2, max_degree=3, probe_limit=6)
        calls = {}

        def weight(i, j):
            calls[(i, j)] = calls.get((i, j), 0) + 1
            return 1.0

        edges = sparse_candidate_edges(_signatures(60), weight, config)
        # The weight oracle runs at most once per pair (memoized), and
        # the total probe volume is bounded by n * probe_limit.
        assert all(count == 1 for count in calls.values())
        assert len(calls) <= 60 * config.probe_limit
        # Kept edges are the union of per-node top lists: a node can
        # exceed max_degree only through other nodes' lists, and the
        # total size is bounded by n * max_degree.
        assert len(edges) <= 60 * config.max_degree

    def test_infeasible_pairs_never_emitted(self):
        edges = sparse_candidate_edges(
            _signatures(40),
            lambda i, j: None if (i + j) % 2 else 1.0,
        )
        assert edges
        assert all((u + v) % 2 == 0 for u, v, _w in edges)

    def test_all_infeasible_gives_no_edges(self):
        assert sparse_candidate_edges(_signatures(20), lambda i, j: None) == []

    def test_single_bucket_covers_everyone(self):
        # All nodes identical: the rotation must still give every node
        # candidates rather than funnelling probes onto node 0.
        signatures = [(0, 0)] * 32
        edges = sparse_candidate_edges(
            signatures, lambda i, j: 1.0, SparsifyConfig(threshold=2)
        )
        touched = {u for u, _v, _w in edges} | {v for _u, v, _w in edges}
        assert touched == set(range(32))

    def test_heaviest_edges_survive(self):
        # Node 0 in a bucket with many partners: its kept edges are the
        # heaviest among those probed.
        config = SparsifyConfig(threshold=2, max_degree=2, probe_limit=50)
        signatures = [(0, 0)] * 20
        edges = sparse_candidate_edges(
            signatures, lambda i, j: float(i + j), config
        )
        node0 = sorted(w for u, v, w in edges if u == 0)
        # 0's two heaviest probed partners are 18 and 19.
        assert node0[-2:] == [18.0, 19.0]
