"""Tests for the from-scratch blossom maximum weight matching."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.blossom import (
    matching_pairs,
    matching_weight,
    max_weight_matching,
)
from repro.matching.exact import brute_force_matching


def test_empty_edge_list():
    assert max_weight_matching([]) == []


def test_single_edge():
    assert matching_pairs([(0, 1, 5.0)]) == {(0, 1)}


def test_single_edge_zero_weight_not_matched():
    # Zero weight adds nothing; the matcher may leave it out.
    pairs = matching_pairs([(0, 1, 0.0)])
    assert matching_weight([(0, 1, 0.0)], pairs) == 0.0


def test_negative_weight_edge_unmatched():
    assert matching_pairs([(0, 1, -1.0)]) == set()


def test_negative_weight_matched_when_max_cardinality():
    assert matching_pairs([(0, 1, -1.0)], max_cardinality=True) == {(0, 1)}


def test_self_loop_rejected():
    with pytest.raises(ValueError):
        max_weight_matching([(2, 2, 1.0)])


def test_negative_vertex_rejected():
    with pytest.raises(ValueError):
        max_weight_matching([(-1, 0, 1.0)])


def test_path_graph_picks_heavier_edge():
    # 0-1 (2), 1-2 (3): only one can be matched.
    assert matching_pairs([(0, 1, 2.0), (1, 2, 3.0)]) == {(1, 2)}


def test_path_graph_three_edges():
    # 0-1 (5), 1-2 (11), 2-3 (5): ends beat the heavy middle (10 > 11? no).
    pairs = matching_pairs([(0, 1, 5.0), (1, 2, 11.0), (2, 3, 5.0)])
    assert pairs == {(1, 2)}


def test_path_graph_prefers_two_ends():
    pairs = matching_pairs([(0, 1, 6.0), (1, 2, 11.0), (2, 3, 6.0)])
    assert pairs == {(0, 1), (2, 3)}


def test_triangle_matches_heaviest_edge():
    edges = [(0, 1, 5.0), (1, 2, 6.0), (0, 2, 4.0)]
    assert matching_pairs(edges) == {(1, 2)}


def test_odd_cycle_blossom_case():
    # 5-cycle where the optimum requires reasoning around the blossom.
    edges = [(0, 1, 8.0), (1, 2, 9.0), (2, 3, 10.0), (3, 4, 7.0), (4, 0, 6.0)]
    pairs = matching_pairs(edges)
    bf_pairs, bf_weight = brute_force_matching(edges)
    assert matching_weight(edges, pairs) == pytest.approx(bf_weight)


def test_classic_blossom_expansion():
    # Known tricky instance from the literature: nested blossoms.
    edges = [
        (1, 2, 9), (1, 3, 9), (2, 3, 10), (2, 4, 8), (3, 5, 8),
        (4, 5, 10), (5, 6, 6),
    ]
    pairs = matching_pairs(edges)
    assert matching_weight(edges, pairs) == pytest.approx(23.0)
    assert pairs == {(1, 3), (2, 4), (5, 6)}


def test_blossom_with_augmenting_path_through_it():
    edges = [
        (1, 2, 8), (1, 3, 9), (2, 3, 10), (3, 4, 7), (4, 5, 6), (1, 6, 3),
    ]
    pairs = matching_pairs(edges)
    _bf_pairs, bf_weight = brute_force_matching(edges)
    assert matching_weight(edges, pairs) == pytest.approx(bf_weight)


def test_float_weights():
    edges = [(0, 1, 0.9), (1, 2, 0.45), (2, 3, 0.9), (0, 3, 0.2)]
    pairs = matching_pairs(edges)
    assert pairs == {(0, 1), (2, 3)}


def test_parallel_edges_use_best():
    edges = [(0, 1, 1.0), (0, 1, 7.0), (0, 1, 3.0)]
    pairs = matching_pairs(edges)
    assert pairs == {(0, 1)}
    assert matching_weight(edges, pairs) == pytest.approx(7.0)


def test_disconnected_components():
    edges = [(0, 1, 2.0), (2, 3, 3.0), (4, 5, 4.0)]
    assert matching_pairs(edges) == {(0, 1), (2, 3), (4, 5)}


def test_mate_array_is_symmetric():
    edges = [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.5), (3, 0, 1.0)]
    mate = max_weight_matching(edges)
    for v, m in enumerate(mate):
        if m != -1:
            assert mate[m] == v


def test_isolated_vertices_in_mate_array():
    # Vertex 2 appears only via id numbering (edge 3-4 forces length 5).
    mate = max_weight_matching([(0, 1, 1.0), (3, 4, 1.0)])
    assert len(mate) == 5
    assert mate[2] == -1


def test_max_cardinality_prefers_more_edges():
    # Weight-only optimum is the single heavy middle edge; cardinality
    # optimum takes both light ends.
    edges = [(0, 1, 2.0), (1, 2, 100.0), (2, 3, 2.0)]
    weight_only = matching_pairs(edges)
    cardinality = matching_pairs(edges, max_cardinality=True)
    assert weight_only == {(1, 2)}
    assert cardinality == {(0, 1), (2, 3)}


def test_complete_graph_k4_perfect_matching():
    edges = [
        (0, 1, 10.0), (0, 2, 1.0), (0, 3, 1.0),
        (1, 2, 1.0), (1, 3, 1.0), (2, 3, 10.0),
    ]
    assert matching_pairs(edges) == {(0, 1), (2, 3)}


def test_large_random_graph_against_networkx():
    networkx = pytest.importorskip("networkx")
    rng = random.Random(7)
    n = 60
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.25:
                edges.append((u, v, rng.randint(1, 500)))
    pairs = matching_pairs(edges)
    graph = networkx.Graph()
    graph.add_weighted_edges_from(edges)
    nx_pairs = networkx.max_weight_matching(graph)
    nx_weight = sum(graph[u][v]["weight"] for u, v in nx_pairs)
    assert matching_weight(edges, pairs) == pytest.approx(nx_weight)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return [(u, v, w) for (u, v), w in zip(chosen, weights)]


@settings(max_examples=150, deadline=None)
@given(random_graphs())
def test_matches_brute_force_weight(edges):
    pairs = matching_pairs(edges)
    _bf_pairs, bf_weight = brute_force_matching(edges)
    assert matching_weight(edges, pairs) == pytest.approx(bf_weight)


@settings(max_examples=150, deadline=None)
@given(random_graphs())
def test_max_cardinality_matches_brute_force(edges):
    pairs = matching_pairs(edges, max_cardinality=True)
    bf_pairs, bf_weight = brute_force_matching(edges, max_cardinality=True)
    assert len(pairs) == len(bf_pairs)
    assert matching_weight(edges, pairs) == pytest.approx(bf_weight)


@settings(max_examples=100, deadline=None)
@given(random_graphs())
def test_matching_is_valid(edges):
    """No vertex appears in two matched pairs."""
    pairs = matching_pairs(edges)
    seen = set()
    for u, v in pairs:
        assert u not in seen and v not in seen
        seen.update((u, v))


@settings(max_examples=60, deadline=None)
@given(random_graphs(), st.floats(min_value=0.001, max_value=1000))
def test_weight_scaling_invariance(edges, scale):
    """Scaling every weight by a positive constant keeps the matching weight scaled."""
    pairs = matching_pairs(edges)
    scaled = [(u, v, w * scale) for u, v, w in edges]
    scaled_pairs = matching_pairs(scaled)
    assert matching_weight(scaled, scaled_pairs) == pytest.approx(
        matching_weight(edges, pairs) * scale, rel=1e-6
    )
