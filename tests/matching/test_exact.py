"""Tests for the exact exponential matchers (test oracles)."""

import pytest

from repro.matching.exact import brute_force_matching, exact_hypergraph_matching


class TestBruteForce:
    def test_empty(self):
        pairs, weight = brute_force_matching([])
        assert pairs == set()
        assert weight == 0.0

    def test_single_edge(self):
        pairs, weight = brute_force_matching([(0, 1, 4.0)])
        assert pairs == {(0, 1)}
        assert weight == 4.0

    def test_path(self):
        pairs, weight = brute_force_matching(
            [(0, 1, 6.0), (1, 2, 11.0), (2, 3, 6.0)]
        )
        assert pairs == {(0, 1), (2, 3)}
        assert weight == 12.0

    def test_parallel_edges_keep_best(self):
        pairs, weight = brute_force_matching([(0, 1, 1.0), (1, 0, 9.0)])
        assert weight == 9.0

    def test_zero_weight_edges_do_not_help(self):
        _pairs, weight = brute_force_matching([(0, 1, 0.0), (2, 3, 0.0)])
        assert weight == 0.0

    def test_max_cardinality_counts_edges_first(self):
        edges = [(0, 1, 1.0), (1, 2, 50.0), (2, 3, 1.0)]
        pairs, weight = brute_force_matching(edges, max_cardinality=True)
        assert len(pairs) == 2
        assert weight == 2.0


class TestHypergraph:
    def test_pairs_reduce_to_matching(self):
        weights = {(0, 1): 3.0, (0, 2): 1.0, (1, 2): 1.0, (2, 3): 3.0,
                   (0, 3): 1.0, (1, 3): 1.0}
        groups, total = exact_hypergraph_matching(
            4, 2, lambda g: weights.get(tuple(sorted(g)), 0.0)
        )
        assert total == 6.0
        assert sorted(groups) == [(0, 1), (2, 3)]

    def test_triples(self):
        def weight(group):
            # Only one specific triple is valuable.
            return 10.0 if group == (0, 1, 2) else 1.0

        groups, total = exact_hypergraph_matching(6, 3, weight)
        assert (0, 1, 2) in groups
        assert total == 11.0  # plus the (3,4,5) leftover triple at 1.0

    def test_disjointness(self):
        groups, _ = exact_hypergraph_matching(6, 2, lambda g: 1.0)
        used = [node for group in groups for node in group]
        assert len(used) == len(set(used))

    def test_group_size_one(self):
        groups, total = exact_hypergraph_matching(3, 1, lambda g: float(g[0]))
        assert total == 3.0  # picks nodes 1 and 2 (0 adds nothing)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            exact_hypergraph_matching(3, 0, lambda g: 1.0)

    def test_fewer_nodes_than_group_size(self):
        groups, total = exact_hypergraph_matching(2, 3, lambda g: 1.0)
        assert groups == []
        assert total == 0.0

    def test_prefers_weight_over_coverage(self):
        def weight(group):
            return {(0, 1): 10.0, (2, 3): 10.0, (0, 2): 15.0}.get(group, 0.0)

        groups, total = exact_hypergraph_matching(4, 2, weight)
        # (0,1)+(2,3)=20 beats (0,2)=15.
        assert total == 20.0

    def test_max_nodes_guard(self):
        with pytest.raises(ValueError, match="max_nodes=None"):
            exact_hypergraph_matching(21, 2, lambda g: 1.0)

    def test_max_nodes_guard_disabled(self):
        # group_size == num_nodes keeps the forced run to one hyperedge.
        groups, total = exact_hypergraph_matching(
            21, 21, lambda g: 1.0, max_nodes=None
        )
        assert groups == [tuple(range(21))]
        assert total == 1.0
