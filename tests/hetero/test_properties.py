"""Property tests of the heterogeneous arm.

Two properties lock the speed-scaling model down:

* **Metamorphic k-scaling** — multiplying every generation's speed
  factor by ``k`` (``TypeScaling.uniformly_scaled``) must scale the
  makespan of a contention-free at-time-zero workload by ``~1/k``.
  The workload is sized under cluster capacity so every job starts at
  the first scheduling pass; then every time component of the run is
  a stage duration, and stage durations scale exactly.
* **Single-type identity** — a one-generation heterogeneous
  configuration must be bit-identical to the untyped homogeneous
  path, for any seed, via the
  :func:`~repro.verify.compare_homogeneous_identity` oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.hetero.types import DEFAULT_TYPE_SCALING, get_gpu_type
from repro.hetero.workload import build_hetero_jobs
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.verify import compare_homogeneous_identity

#: Explicit half/half two-generation layout: per-type capacity (64
#: GPUs each) exceeds any 8-job workload's pinned demand, so every job
#: starts at t=0 and makespan is a pure function of stage durations.
_LAYOUT = [get_gpu_type("v100")] * 8 + [get_gpu_type("a100")] * 8


def _makespan(scaling, num_jobs, seed):
    trace = generate_trace(
        "1", num_jobs=num_jobs, seed=seed, at_time_zero=True
    )
    specs = build_hetero_jobs(
        trace, ("v100", "a100"), seed=seed, scaling=scaling
    )
    cluster = Cluster(16, 8, machine_types=list(_LAYOUT))
    # restart_penalty is a fixed startup cost, not a stage duration,
    # so it would add a non-scaling constant; zero it to keep the
    # makespan a pure function of (scaled) stage durations.
    result = ClusterSimulator(
        make_scheduler("fifo"), cluster=cluster, restart_penalty=0.0
    ).run(specs, trace.name)
    assert len(result.jcts) == len(specs)
    return result.makespan


@settings(max_examples=20, deadline=None)
@given(
    k=st.floats(min_value=0.3, max_value=3.0,
                allow_nan=False, allow_infinity=False),
    num_jobs=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=40),
)
def test_uniform_speed_scaling_scales_makespan(k, num_jobs, seed):
    base = _makespan(DEFAULT_TYPE_SCALING, num_jobs, seed)
    scaled = _makespan(
        DEFAULT_TYPE_SCALING.uniformly_scaled(k), num_jobs, seed
    )
    assert scaled == pytest.approx(base / k, rel=1e-6)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30),
    num_jobs=st.integers(min_value=4, max_value=12),
    type_name=st.sampled_from(("k80", "v100", "a100")),
    scheduler=st.sampled_from(("muri-s", "muri-l", "fifo")),
)
def test_single_type_hetero_is_bit_identical(
    seed, num_jobs, type_name, scheduler
):
    trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
    from repro.trace.workload import build_jobs

    specs = build_jobs(trace, seed=seed)
    homogeneous, hetero = compare_homogeneous_identity(
        specs,
        type_name=type_name,
        scheduler=scheduler,
        cluster_shape=(4, 8),
        seed=seed,
    )
    assert homogeneous.jcts == hetero.jcts


class TestUniformScalingIdentity:
    """The throughput-aware placer's degeneracy oracle.

    Uniform speed factors carry no placement signal, so the aware
    placer must reproduce the default path bit-identically — for the
    neutral factor 1.0 and for any other uniform factor.
    """

    @staticmethod
    def _specs(num_jobs=96, seed=0):
        from repro.trace.workload import build_jobs

        trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
        return build_jobs(trace, seed=seed)

    @pytest.mark.parametrize("factor", [1.0, 0.5, 2.0])
    def test_identity_holds_for_uniform_factors(self, factor):
        from repro.verify import compare_uniform_scaling_identity

        baseline, aware = compare_uniform_scaling_identity(
            self._specs(), factor=factor, cluster_shape=(8, 8), seed=0
        )
        assert baseline.jcts == aware.jcts
        assert baseline.makespan == aware.makespan

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=20),
        scheduler=st.sampled_from(("muri-s", "fifo")),
    )
    def test_identity_holds_across_seeds(self, seed, scheduler):
        from repro.verify import compare_uniform_scaling_identity

        # Cap per-job demand at one machine so a hard pin can always
        # be hosted by its generation's pool, whatever mix the seed
        # draws — an oversized pin would starve, not diverge.
        specs = [
            spec for spec in self._specs(num_jobs=32, seed=seed)
            if spec.num_gpus <= 8
        ]
        baseline, aware = compare_uniform_scaling_identity(
            specs,
            scheduler=scheduler,
            cluster_shape=(4, 8),
            seed=seed,
        )
        assert baseline.jcts == aware.jcts

    def test_oracle_detects_a_divergent_placer(self, monkeypatch):
        """Non-vacuity: a placer that mis-ranks pools under uniform
        factors must trip the oracle."""
        from repro.cluster.placement import ThroughputAwarePlacer
        from repro.verify import compare_uniform_scaling_identity
        from repro.verify.invariants import InvariantViolation

        def skewed(self, cluster, model):
            # Fabricate a throughput signal that is not there, forcing
            # genuine steering (and with it, different plans).
            names = cluster.gpu_type_names()
            if model is None or len(names) < 2:
                return None
            return {
                name: float(index + 1)
                for index, name in enumerate(names)
            }

        monkeypatch.setattr(
            ThroughputAwarePlacer, "_pool_factors", skewed
        )
        with pytest.raises(InvariantViolation, match="uniform_scaling"):
            compare_uniform_scaling_identity(
                self._specs(), cluster_shape=(8, 8), seed=0
            )
