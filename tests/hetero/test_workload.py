"""Hetero layout and workload builders: determinism and scaling."""

import pytest

from repro.hetero.types import DEFAULT_TYPE_SCALING, TypeScaling
from repro.hetero.workload import (
    build_hetero_jobs,
    make_hetero_cluster,
    make_type_mix,
    pin_jobs,
)
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs


def small_specs(num_jobs=6, seed=0):
    trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
    return build_jobs(trace, seed=seed)


class TestMakeTypeMix:
    def test_every_generation_appears(self):
        layout = make_type_mix(("v100", "a100", "k80"), 12, seed=3)
        assert len(layout) == 12
        assert {t.name for t in layout} == {"v100", "a100", "k80"}

    def test_deterministic_per_seed(self):
        a = make_type_mix(("v100", "a100"), 10, seed=5)
        b = make_type_mix(("v100", "a100"), 10, seed=5)
        c = make_type_mix(("v100", "a100"), 10, seed=6)
        assert a == b
        assert [t.name for t in a] != [t.name for t in c] or a == c

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            make_type_mix((), 4)

    def test_more_names_than_machines_rejected(self):
        with pytest.raises(ValueError):
            make_type_mix(("v100", "a100", "k80"), 2)

    def test_unknown_generation_rejected(self):
        with pytest.raises(KeyError):
            make_type_mix(("h100",), 4)


class TestMakeHeteroCluster:
    def test_cluster_carries_the_mix(self):
        cluster = make_hetero_cluster(
            num_machines=6, gpus_per_machine=4,
            type_names=("v100", "a100"), seed=0,
        )
        assert cluster.total_gpus == 24
        assert cluster.is_heterogeneous
        assert set(cluster.gpu_type_names()) == {"v100", "a100"}

    def test_single_type_is_not_heterogeneous(self):
        cluster = make_hetero_cluster(type_names=("v100",))
        assert not cluster.is_heterogeneous
        assert cluster.gpu_type_names() == ("v100",)


class TestPinJobs:
    def test_every_job_pinned_and_scaled(self):
        specs = small_specs()
        pinned = pin_jobs(specs, ("a100",), seed=0)
        for before, after in zip(specs, pinned):
            assert after.gpu_affinity == "a100"
            assert after.affinity_mode == "pin"
            factor = DEFAULT_TYPE_SCALING.factor(before.model, "a100")
            assert after.profile == before.profile.scaled(1.0 / factor)

    def test_deterministic_assignment(self):
        specs = small_specs()
        a = pin_jobs(specs, ("v100", "a100"), seed=9)
        b = pin_jobs(specs, ("v100", "a100"), seed=9)
        assert [s.gpu_affinity for s in a] == [s.gpu_affinity for s in b]

    def test_prefer_jobs_keep_baseline_profile(self):
        specs = small_specs()
        pinned = pin_jobs(specs, ("a100",), seed=0, prefer_fraction=1.0)
        for before, after in zip(specs, pinned):
            assert after.affinity_mode == "prefer"
            assert after.profile == before.profile

    def test_custom_scaling_table(self):
        specs = small_specs(num_jobs=3)
        table = TypeScaling(base={"a100": 4.0})
        pinned = pin_jobs(specs, ("a100",), scaling=table)
        for before, after in zip(specs, pinned):
            assert after.profile == before.profile.scaled(0.25)

    def test_inputs_not_mutated(self):
        specs = small_specs(num_jobs=3)
        pin_jobs(specs, ("a100",))
        assert all(s.gpu_affinity is None for s in specs)

    def test_validation(self):
        specs = small_specs(num_jobs=2)
        with pytest.raises(ValueError):
            pin_jobs(specs, ())
        with pytest.raises(ValueError):
            pin_jobs(specs, ("v100",), prefer_fraction=1.5)
        with pytest.raises(KeyError):
            pin_jobs(specs, ("h100",))


class TestBuildHeteroJobs:
    def test_matches_build_jobs_then_pin(self):
        trace = generate_trace("1", num_jobs=5, seed=2)
        direct = build_hetero_jobs(trace, ("v100", "a100"), seed=2)
        composed = pin_jobs(
            build_jobs(trace, seed=2), ("v100", "a100"), seed=2
        )
        assert [s.gpu_affinity for s in direct] == [
            s.gpu_affinity for s in composed
        ]
        assert [s.profile for s in direct] == [s.profile for s in composed]
