"""The generation catalogue and TypeScaling speed-factor tables."""

import pytest

from repro.hetero.types import (
    DEFAULT_TYPE_SCALING,
    GPU_GENERATIONS,
    TypeScaling,
    get_gpu_type,
    memory_caps_by_type,
)


class TestCatalogue:
    def test_v100_is_the_baseline(self):
        assert GPU_GENERATIONS["v100"].speed_factor == 1.0

    def test_generations_ordered_by_speed(self):
        factors = [
            GPU_GENERATIONS[name].speed_factor
            for name in ("k80", "p100", "v100", "a100")
        ]
        assert factors == sorted(factors)

    def test_lookup_is_case_insensitive(self):
        assert get_gpu_type("A100") is GPU_GENERATIONS["a100"]

    def test_unknown_generation_raises_with_candidates(self):
        with pytest.raises(KeyError, match="h100"):
            get_gpu_type("h100")


class TestTypeScaling:
    def test_base_factor_lookup(self):
        table = TypeScaling(base={"v100": 1.0, "a100": 2.0})
        assert table.factor("resnet50", "a100") == 2.0

    def test_per_model_override_wins(self):
        table = TypeScaling(
            base={"a100": 2.0},
            per_model={"gpt2": {"a100": 2.4}},
        )
        assert table.factor("gpt2", "a100") == 2.4
        assert table.factor("GPT2", "a100") == 2.4
        assert table.factor("resnet50", "a100") == 2.0

    def test_unknown_generation_raises(self):
        table = TypeScaling(base={"v100": 1.0})
        with pytest.raises(KeyError, match="a100"):
            table.factor("resnet50", "a100")

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_non_positive_factors_rejected(self, bad):
        with pytest.raises(ValueError):
            TypeScaling(base={"v100": bad})
        with pytest.raises(ValueError):
            TypeScaling(base={"v100": 1.0}, per_model={"m": {"v100": bad}})

    def test_uniformly_scaled_multiplies_everything(self):
        table = TypeScaling(
            base={"v100": 1.0, "a100": 2.0},
            per_model={"gpt2": {"a100": 2.4}},
        )
        doubled = table.uniformly_scaled(2.0)
        assert doubled.factor("resnet50", "v100") == 2.0
        assert doubled.factor("resnet50", "a100") == 4.0
        assert doubled.factor("gpt2", "a100") == 4.8

    def test_uniformly_scaled_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            TypeScaling(base={"v100": 1.0}).uniformly_scaled(0.0)

    def test_names_sorted(self):
        assert DEFAULT_TYPE_SCALING.names() == ("a100", "k80", "p100", "v100")

    def test_default_table_covers_catalogue(self):
        for name, gpu_type in GPU_GENERATIONS.items():
            assert DEFAULT_TYPE_SCALING.factor("resnet50", name) == (
                gpu_type.speed_factor
            )


class TestMemoryCapsByType:
    def test_full_catalogue_by_default(self):
        caps = memory_caps_by_type()
        assert set(caps) == set(GPU_GENERATIONS)
        assert caps["k80"] == GPU_GENERATIONS["k80"].memory_gb

    def test_subset_and_case_folding(self):
        caps = memory_caps_by_type(("K80", "a100"))
        assert caps == {"k80": 12.0, "a100": 40.0}

    def test_unknown_generation_raises(self):
        with pytest.raises(KeyError, match="h100"):
            memory_caps_by_type(("h100",))
