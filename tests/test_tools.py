"""The repo's CI tools: docstring lint and the metric regression gate."""

import json
import subprocess
import sys
from pathlib import Path

from repro.sweep import ResultStore, RunResult, RunSpec

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_tool(name, *argv):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / name), *argv],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def _store_with_metrics(path, avg_jct_by_label):
    """Write a sweep store whose runs have the given avg JCTs."""
    store = ResultStore(path)
    for label, avg_jct in avg_jct_by_label.items():
        spec = RunSpec(
            experiment="test", label=label, scheduler="fifo",
            trace_id="1", seed=0, num_jobs=2,
        )
        payload = {
            "format_version": 1, "scheduler_name": "fifo",
            "trace_name": "t",
            "jcts": {"0": avg_jct}, "finish_times": {"0": avg_jct},
            "submit_times": {"0": 0.0}, "total_preemptions": 0,
            "total_restart_time": 0.0, "wall_clock": 0.0,
            "timeseries": [],
        }
        store.append(RunResult(
            run_id=spec.run_id, spec=spec, status="ok", result=payload,
        ))
    return store


def test_check_docstrings_default_roots_are_clean():
    proc = _run_tool("check_docstrings.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_check_docstrings_flags_missing(tmp_path):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "mod.py").write_text("def public():\n    pass\n")
    proc = _run_tool("check_docstrings.py", str(bad))
    assert proc.returncode == 1
    assert "missing docstring" in proc.stdout


def test_diff_metrics_update_then_clean(tmp_path):
    store_path = tmp_path / "runs.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(store_path, {"A": 10.0, "B": 20.0})

    proc = _run_tool(
        "diff_metrics.py", str(store_path), "--baseline", str(baseline),
        "--update",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert len(json.loads(baseline.read_text())) == 2

    proc = _run_tool(
        "diff_metrics.py", str(store_path), "--baseline", str(baseline),
    )
    assert proc.returncode == 0
    assert "0 failure(s)" in proc.stdout


def test_diff_metrics_fails_on_regression_and_grid_drift(tmp_path):
    old_store = tmp_path / "old.jsonl"
    new_store = tmp_path / "new.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(old_store, {"A": 10.0, "B": 20.0})
    # A regressed by 50%, B vanished, C is new.
    _store_with_metrics(new_store, {"A": 15.0, "C": 5.0})

    proc = _run_tool(
        "diff_metrics.py", str(old_store), "--baseline", str(baseline),
        "--update",
    )
    assert proc.returncode == 0
    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
    )
    assert proc.returncode == 1
    assert "exceeds +5%" in proc.stdout
    assert "missing from results" in proc.stdout
    assert "not in baseline" in proc.stdout


def test_diff_metrics_tolerance_is_configurable(tmp_path):
    old_store = tmp_path / "old.jsonl"
    new_store = tmp_path / "new.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(old_store, {"A": 10.0})
    _store_with_metrics(new_store, {"A": 15.0})

    _run_tool(
        "diff_metrics.py", str(old_store), "--baseline", str(baseline),
        "--update",
    )
    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
        "--tolerance", "0.6",
    )
    assert proc.returncode == 0, proc.stdout

    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
        "--tolerance", "0.3",
    )
    assert proc.returncode == 1


def test_diff_metrics_merges_shard_stores(tmp_path):
    shard_a = tmp_path / "shard-1.jsonl"
    shard_b = tmp_path / "shard-2.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(shard_a, {"A": 10.0})
    _store_with_metrics(shard_b, {"B": 20.0})

    proc = _run_tool(
        "diff_metrics.py", str(shard_a), str(shard_b),
        "--baseline", str(baseline), "--update",
    )
    assert proc.returncode == 0
    assert len(json.loads(baseline.read_text())) == 2
    proc = _run_tool(
        "diff_metrics.py", str(shard_a), str(shard_b),
        "--baseline", str(baseline),
    )
    assert proc.returncode == 0
    assert "compared 2 run(s)" in proc.stdout


def _bench_doc(normalized, suite="grouping", schema=1):
    """A minimal bench document with one gated metric per benchmark."""
    return {
        "schema": schema,
        "suite": suite,
        "benchmarks": {
            name: {"seconds": value / 50.0, "normalized": value}
            for name, value in normalized.items()
        },
    }


def _write_json(path, document):
    path.write_text(json.dumps(document, indent=2) + "\n")


def test_diff_metrics_bench_clean_and_regression(tmp_path):
    baseline = tmp_path / "BENCH_grouping.json"
    current = tmp_path / "current.json"
    _write_json(baseline, _bench_doc({"cold": 10.0, "warm": 1.0}))

    # Within tolerance: clean.
    _write_json(current, _bench_doc({"cold": 10.5, "warm": 1.0}))
    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline), "--tolerance", "0.10",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 failure(s)" in proc.stdout

    # A 20% regression on one gated metric: fail.
    _write_json(current, _bench_doc({"cold": 12.0, "warm": 1.0}))
    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline), "--tolerance", "0.10",
    )
    assert proc.returncode == 1
    assert "exceeds +10%" in proc.stdout


def test_diff_metrics_bench_subset_is_a_notice(tmp_path):
    """A quick run missing full-only benchmarks gates cleanly."""
    baseline = tmp_path / "BENCH_grouping.json"
    current = tmp_path / "current.json"
    _write_json(baseline, _bench_doc({"cold_512": 5.0, "cold_4096": 90.0}))
    _write_json(current, _bench_doc({"cold_512": 5.0}))
    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline), "--tolerance", "0.10",
    )
    assert proc.returncode == 0, proc.stdout
    assert "in baseline only" in proc.stdout


def test_diff_metrics_bench_schema_mismatch_refuses(tmp_path):
    baseline = tmp_path / "BENCH_grouping.json"
    current = tmp_path / "current.json"
    _write_json(baseline, _bench_doc({"cold": 10.0}, schema=1))
    _write_json(current, _bench_doc({"cold": 10.0}, schema=2))
    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline),
    )
    assert proc.returncode != 0
    assert "schema mismatch" in proc.stdout + proc.stderr


def test_diff_metrics_bench_update_writes_baseline(tmp_path):
    baseline = tmp_path / "BENCH_service.json"
    current = tmp_path / "current.json"
    _write_json(current, _bench_doc({"submit": 2.0}, suite="service"))

    # No baseline yet: exit 2 with a pointer, not a crash.
    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline),
    )
    assert proc.returncode == 2

    proc = _run_tool(
        "diff_metrics.py", "--bench", str(current),
        "--baseline", str(baseline), "--update",
    )
    assert proc.returncode == 0
    assert json.loads(baseline.read_text())["suite"] == "service"
