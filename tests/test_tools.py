"""The repo's CI tools: docstring lint and the metric regression gate."""

import json
import subprocess
import sys
from pathlib import Path

from repro.sweep import ResultStore, RunResult, RunSpec

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_tool(name, *argv):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / name), *argv],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def _store_with_metrics(path, avg_jct_by_label):
    """Write a sweep store whose runs have the given avg JCTs."""
    store = ResultStore(path)
    for label, avg_jct in avg_jct_by_label.items():
        spec = RunSpec(
            experiment="test", label=label, scheduler="fifo",
            trace_id="1", seed=0, num_jobs=2,
        )
        payload = {
            "format_version": 1, "scheduler_name": "fifo",
            "trace_name": "t",
            "jcts": {"0": avg_jct}, "finish_times": {"0": avg_jct},
            "submit_times": {"0": 0.0}, "total_preemptions": 0,
            "total_restart_time": 0.0, "wall_clock": 0.0,
            "timeseries": [],
        }
        store.append(RunResult(
            run_id=spec.run_id, spec=spec, status="ok", result=payload,
        ))
    return store


def test_check_docstrings_default_roots_are_clean():
    proc = _run_tool("check_docstrings.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_check_docstrings_flags_missing(tmp_path):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "mod.py").write_text("def public():\n    pass\n")
    proc = _run_tool("check_docstrings.py", str(bad))
    assert proc.returncode == 1
    assert "missing docstring" in proc.stdout


def test_diff_metrics_update_then_clean(tmp_path):
    store_path = tmp_path / "runs.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(store_path, {"A": 10.0, "B": 20.0})

    proc = _run_tool(
        "diff_metrics.py", str(store_path), "--baseline", str(baseline),
        "--update",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert len(json.loads(baseline.read_text())) == 2

    proc = _run_tool(
        "diff_metrics.py", str(store_path), "--baseline", str(baseline),
    )
    assert proc.returncode == 0
    assert "0 failure(s)" in proc.stdout


def test_diff_metrics_fails_on_regression_and_grid_drift(tmp_path):
    old_store = tmp_path / "old.jsonl"
    new_store = tmp_path / "new.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(old_store, {"A": 10.0, "B": 20.0})
    # A regressed by 50%, B vanished, C is new.
    _store_with_metrics(new_store, {"A": 15.0, "C": 5.0})

    proc = _run_tool(
        "diff_metrics.py", str(old_store), "--baseline", str(baseline),
        "--update",
    )
    assert proc.returncode == 0
    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
    )
    assert proc.returncode == 1
    assert "exceeds +5%" in proc.stdout
    assert "missing from results" in proc.stdout
    assert "not in baseline" in proc.stdout


def test_diff_metrics_tolerance_is_configurable(tmp_path):
    old_store = tmp_path / "old.jsonl"
    new_store = tmp_path / "new.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(old_store, {"A": 10.0})
    _store_with_metrics(new_store, {"A": 15.0})

    _run_tool(
        "diff_metrics.py", str(old_store), "--baseline", str(baseline),
        "--update",
    )
    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
        "--tolerance", "0.6",
    )
    assert proc.returncode == 0, proc.stdout

    proc = _run_tool(
        "diff_metrics.py", str(new_store), "--baseline", str(baseline),
        "--tolerance", "0.3",
    )
    assert proc.returncode == 1


def test_diff_metrics_merges_shard_stores(tmp_path):
    shard_a = tmp_path / "shard-1.jsonl"
    shard_b = tmp_path / "shard-2.jsonl"
    baseline = tmp_path / "baseline.json"
    _store_with_metrics(shard_a, {"A": 10.0})
    _store_with_metrics(shard_b, {"B": 20.0})

    proc = _run_tool(
        "diff_metrics.py", str(shard_a), str(shard_b),
        "--baseline", str(baseline), "--update",
    )
    assert proc.returncode == 0
    assert len(json.loads(baseline.read_text())) == 2
    proc = _run_tool(
        "diff_metrics.py", str(shard_a), str(shard_b),
        "--baseline", str(baseline),
    )
    assert proc.returncode == 0
    assert "compared 2 run(s)" in proc.stdout
