"""Deterministic micro-scenarios for the cluster simulator."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.antman import AntManScheduler
from repro.schedulers.classic import FifoScheduler, SrtfScheduler
from repro.core.muri import MuriScheduler
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.faults import FaultInjector
from repro.sim.simulator import ClusterSimulator, SimulationError

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 second per iteration
CPU2 = StageProfile((0.0, 2.0, 1.0, 0.0))      # 3 s/iter, CPU-heavy
GPU2 = StageProfile((0.0, 1.0, 2.0, 0.0))      # 3 s/iter, GPU-heavy


def spec(iters, gpus=1, submit=0.0, profile=UNIT, name=None):
    return JobSpec(profile=profile, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters, name=name)


def ideal_sim(scheduler, cluster=None, **kwargs):
    defaults = dict(
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
    )
    defaults.update(kwargs)
    return ClusterSimulator(scheduler, cluster=cluster or Cluster(1, 1), **defaults)


class TestSingleJob:
    def test_exact_completion(self):
        job = spec(100)
        result = ideal_sim(FifoScheduler()).run([job])
        assert result.jcts[job.job_id] == pytest.approx(100.0)
        assert result.makespan == pytest.approx(100.0)

    def test_restart_penalty_delays_completion(self):
        job = spec(10)
        result = ideal_sim(FifoScheduler(), restart_penalty=30.0).run([job])
        assert result.jcts[job.job_id] == pytest.approx(40.0)

    def test_late_submission(self):
        job = spec(10, submit=500.0)
        result = ideal_sim(FifoScheduler()).run([job])
        assert result.finish_times[job.job_id] == pytest.approx(510.0)
        assert result.jcts[job.job_id] == pytest.approx(10.0)


class TestQueueing:
    def test_fifo_tick_boundary_start(self):
        """Without completion backfill, the queued job waits for the
        next scheduling tick (the paper's six-minute interval)."""
        a, b = spec(100, name="a"), spec(50, name="b")
        result = ideal_sim(FifoScheduler(), scheduling_interval=360.0).run([a, b])
        assert result.finish_times[a.job_id] == pytest.approx(100.0)
        # b starts at the t=360 tick.
        assert result.finish_times[b.job_id] == pytest.approx(410.0)

    def test_event_driven_backfill(self):
        a, b = spec(100), spec(50)
        result = ideal_sim(
            FifoScheduler(), backfill_on_completion=True
        ).run([a, b])
        assert result.finish_times[b.job_id] == pytest.approx(150.0)

    def test_srtf_preempts_for_shorter_job(self):
        long_job = spec(1000, name="long")
        short_job = spec(10, submit=100.0, name="short")
        result = ideal_sim(SrtfScheduler(), scheduling_interval=100.0).run(
            [long_job, short_job]
        )
        # Short preempts at the t=100 tick, runs 100-110; long resumes
        # at the t=200 tick with 900 iterations left.
        assert result.finish_times[short_job.job_id] == pytest.approx(110.0)
        assert result.finish_times[long_job.job_id] == pytest.approx(1100.0)
        assert result.total_preemptions == 1

    def test_fifo_never_preempts(self):
        long_job = spec(1000)
        short_job = spec(10, submit=50.0)
        result = ideal_sim(FifoScheduler(), scheduling_interval=100.0).run(
            [long_job, short_job]
        )
        assert result.total_preemptions == 0
        assert result.finish_times[long_job.job_id] == pytest.approx(1000.0)


class TestInterleavedGroups:
    def test_pair_runs_at_group_period(self):
        """Two complementary jobs on one GPU: T = 4 s/iter each."""
        x, y = spec(50, profile=CPU2), spec(50, profile=GPU2)
        result = ideal_sim(MuriScheduler()).run([x, y])
        assert result.finish_times[x.job_id] == pytest.approx(200.0)
        assert result.finish_times[y.job_id] == pytest.approx(200.0)
        assert result.total_preemptions == 0

    def test_survivor_speeds_up_after_member_finishes(self):
        """When the short member finishes, the survivor reverts to its
        solo period without a restart."""
        x, y = spec(10, profile=CPU2), spec(50, profile=GPU2)
        result = ideal_sim(MuriScheduler()).run([x, y])
        assert result.finish_times[x.job_id] == pytest.approx(40.0)
        # y: 10 iterations at T=4, then 40 solo iterations at 3 s.
        assert result.finish_times[y.job_id] == pytest.approx(40.0 + 40 * 3.0)
        assert result.total_preemptions == 0

    def test_contention_inflates_period(self):
        x, y = spec(50, profile=CPU2), spec(50, profile=GPU2)
        from repro.sim.contention import ContentionModel

        model = ContentionModel(factors={1: 1.0, 2: 1.5})
        result = ideal_sim(MuriScheduler(), contention=model).run([x, y])
        assert result.finish_times[x.job_id] == pytest.approx(200.0 * 1.5)

    def test_light_load_means_no_sharing(self):
        x, y = spec(50, profile=CPU2), spec(50, profile=GPU2)
        result = ideal_sim(MuriScheduler(), cluster=Cluster(1, 2)).run([x, y])
        # Two GPUs for two jobs: each runs solo at 3 s/iter.
        assert result.finish_times[x.job_id] == pytest.approx(150.0)
        assert result.finish_times[y.job_id] == pytest.approx(150.0)


class TestAntMan:
    def test_shares_only_when_full(self):
        a, b, c = spec(100), spec(100), spec(100)
        result = ideal_sim(AntManScheduler()).run([a, b, c])
        # a runs dedicated; b shares a's GPU (identity interleaving of
        # two identical uniform jobs serializes: 2 s/iter each); c waits
        # for the 2-job sharing cap.
        assert result.num_jobs == 3
        assert result.finish_times[a.job_id] >= 100.0

    def test_uncoordinated_penalty_applies(self):
        x, y = spec(50, profile=CPU2), spec(50, profile=GPU2)
        fast = ideal_sim(AntManScheduler()).run([x, y])
        slow = ideal_sim(AntManScheduler(), uncoordinated_penalty=2.0).run(
            [JobSpec(profile=CPU2, num_iterations=50),
             JobSpec(profile=GPU2, num_iterations=50)]
        )
        assert slow.makespan > fast.makespan


class TestCrossMachine:
    def test_spanning_job_pays_penalty(self):
        from repro.sim.contention import ContentionModel

        model = ContentionModel(factors={1: 1.0}, cross_machine_penalty=1.5)
        wide = spec(100, gpus=12)
        compact_cluster = Cluster(1, 16)
        spread_cluster = Cluster(2, 8)
        on_one = ideal_sim(FifoScheduler(), cluster=compact_cluster,
                           contention=model).run([wide])
        wide2 = spec(100, gpus=12)
        on_two = ideal_sim(FifoScheduler(), cluster=spread_cluster,
                           contention=model).run([wide2])
        assert on_two.makespan == pytest.approx(on_one.makespan * 1.5)


class TestFaults:
    def test_faulted_job_still_completes(self):
        job = spec(300)
        injector = FaultInjector(mean_time_between_faults=80.0, seed=3)
        result = ideal_sim(
            FifoScheduler(), fault_injector=injector, scheduling_interval=50.0
        ).run([job])
        assert result.num_jobs == 1
        assert result.jcts[job.job_id] > 300.0  # faults cost time

    def test_progress_loss(self):
        job_a = spec(300)
        lossless = ideal_sim(
            FifoScheduler(),
            fault_injector=FaultInjector(mean_time_between_faults=80.0, seed=3),
            scheduling_interval=50.0,
        ).run([job_a])
        job_b = spec(300)
        lossy = ideal_sim(
            FifoScheduler(),
            fault_injector=FaultInjector(
                mean_time_between_faults=80.0, seed=3, progress_loss=0.5
            ),
            scheduling_interval=50.0,
        ).run([job_b])
        assert lossy.jcts[job_b.job_id] >= lossless.jcts[job_a.job_id]


class TestValidation:
    def test_oversized_job_rejected(self):
        with pytest.raises(SimulationError):
            ideal_sim(FifoScheduler()).run([spec(10, gpus=2)])

    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            ideal_sim(FifoScheduler()).run([])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ClusterSimulator(FifoScheduler(), scheduling_interval=0.0)
        with pytest.raises(ValueError):
            ClusterSimulator(FifoScheduler(), restart_penalty=-1.0)
        with pytest.raises(ValueError):
            ClusterSimulator(FifoScheduler(), uncoordinated_penalty=0.9)


class TestBookkeeping:
    def test_timeseries_spans_cover_run(self):
        jobs = [spec(100), spec(80, submit=30.0)]
        result = ideal_sim(FifoScheduler(), cluster=Cluster(1, 2)).run(jobs)
        total_span = sum(p.span for p in result.timeseries)
        assert total_span == pytest.approx(result.makespan, rel=0.01)

    def test_utilization_bounded(self):
        jobs = [spec(60, profile=CPU2), spec(60, profile=GPU2), spec(60)]
        result = ideal_sim(MuriScheduler()).run(jobs)
        for point in result.timeseries:
            for value in point.utilization:
                assert 0.0 <= value <= 1.0

    def test_submit_times_recorded(self):
        jobs = [spec(10, submit=5.0), spec(10, submit=9.0)]
        result = ideal_sim(FifoScheduler(), cluster=Cluster(1, 2)).run(jobs)
        assert result.submit_times[jobs[0].job_id] == 5.0
        assert result.submit_times[jobs[1].job_id] == 9.0

    def test_wall_clock_positive(self):
        result = ideal_sim(FifoScheduler()).run([spec(10)])
        assert result.wall_clock >= 0.0


class TestArrivalRescheduling:
    def test_arrival_waits_for_tick_by_default(self):
        early = spec(50)
        late = spec(10, submit=100.0)
        result = ideal_sim(
            SrtfScheduler(), cluster=Cluster(1, 2), scheduling_interval=360.0
        ).run([early, late])
        # The late job arrives at t=100 but starts at the t=360 tick.
        assert result.finish_times[late.job_id] == pytest.approx(370.0)

    def test_arrival_triggers_reschedule_when_enabled(self):
        early = spec(50)
        late = spec(10, submit=100.0)
        result = ideal_sim(
            SrtfScheduler(),
            cluster=Cluster(1, 2),
            scheduling_interval=360.0,
            reschedule_on_arrival=True,
        ).run([early, late])
        assert result.finish_times[late.job_id] == pytest.approx(110.0)


class TestLifecycleApi:
    """The begin/step/finalize decomposition behind repro.service."""

    def test_manual_loop_matches_run(self):
        specs = [spec(100), spec(50, submit=5.0), spec(25, submit=40.0)]
        batch = ideal_sim(FifoScheduler()).run(specs)

        simulator = ideal_sim(FifoScheduler())
        state = simulator.begin(specs)
        while state.unfinished:
            simulator.step(state)
        manual = simulator.finalize(state)

        assert manual.jcts == batch.jcts
        assert manual.finish_times == batch.finish_times

    def test_begin_requires_jobs_unless_allowed(self):
        simulator = ideal_sim(FifoScheduler())
        with pytest.raises(SimulationError):
            simulator.begin([])
        state = simulator.begin([], allow_empty=True)
        assert state.unfinished == 0

    def test_inject_mid_run(self):
        simulator = ideal_sim(FifoScheduler(), backfill_on_completion=True)
        state = simulator.begin([spec(10)])
        simulator.step(state)  # first job done at t=10
        late = simulator.inject(state, spec(10, submit=0.0))
        while state.unfinished:
            simulator.step(state)
        result = simulator.finalize(state)
        # The late job arrives at the current clock, never in the past.
        assert result.finish_times[late.job_id] >= 10.0

    def test_inject_oversized_rejected(self):
        simulator = ideal_sim(FifoScheduler())
        state = simulator.begin([spec(10)])
        with pytest.raises(SimulationError):
            simulator.inject(state, spec(10, gpus=64))

    def test_inject_after_finalize_rejected(self):
        simulator = ideal_sim(FifoScheduler())
        state = simulator.begin([spec(1)])
        while state.unfinished:
            simulator.step(state)
        simulator.finalize(state)
        with pytest.raises(SimulationError):
            simulator.inject(state, spec(1))

    def test_cancel_pending_job_before_arrival(self):
        simulator = ideal_sim(FifoScheduler())
        a, b = spec(10), spec(10, submit=500.0)
        state = simulator.begin([a, b])
        assert simulator.cancel(state, b.job_id) is True
        while state.unfinished:
            simulator.step(state)
        result = simulator.finalize(state)
        assert b.job_id not in result.jcts
        assert result.jcts[a.job_id] == pytest.approx(10.0)

    def test_cancel_unknown_or_terminal_is_false(self):
        simulator = ideal_sim(FifoScheduler())
        a = spec(1)
        state = simulator.begin([a])
        assert simulator.cancel(state, 9999) is False
        while state.unfinished:
            simulator.step(state)
        assert simulator.cancel(state, a.job_id) is False

    def test_finalize_is_idempotent(self):
        simulator = ideal_sim(FifoScheduler())
        state = simulator.begin([spec(1)])
        while state.unfinished:
            simulator.step(state)
        assert simulator.finalize(state) is simulator.finalize(state)

    def test_step_after_budget_exhaustion_raises(self):
        simulator = ideal_sim(FifoScheduler(), max_steps=1)
        state = simulator.begin([spec(10), spec(10, submit=100.0)])
        simulator.step(state)
        with pytest.raises(SimulationError):
            simulator.step(state)
