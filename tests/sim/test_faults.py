"""Tests for the fault injector."""

import pytest

from repro.sim.faults import FaultInjector


def test_disabled_by_default():
    injector = FaultInjector()
    assert not injector.enabled
    assert injector.sample_fault_delay() is None


def test_enabled_samples_positive_delays():
    injector = FaultInjector(mean_time_between_faults=100.0, seed=0)
    assert injector.enabled
    delays = [injector.sample_fault_delay() for _ in range(50)]
    assert all(d > 0 for d in delays)


def test_mean_roughly_matches():
    injector = FaultInjector(mean_time_between_faults=50.0, seed=1)
    delays = [injector.sample_fault_delay() for _ in range(5000)]
    assert sum(delays) / len(delays) == pytest.approx(50.0, rel=0.1)


def test_reproducible():
    a = FaultInjector(mean_time_between_faults=10.0, seed=7)
    b = FaultInjector(mean_time_between_faults=10.0, seed=7)
    assert [a.sample_fault_delay() for _ in range(5)] == [
        b.sample_fault_delay() for _ in range(5)
    ]


def test_validation():
    with pytest.raises(ValueError):
        FaultInjector(mean_time_between_faults=0.0)
    with pytest.raises(ValueError):
        FaultInjector(progress_loss=1.5)
