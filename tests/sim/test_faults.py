"""Tests for the fault injector.

Beyond the sampling unit tests, this module pins the *accounting*:
when a faulted job is requeued, exactly ``executed * progress_loss``
iterations are added back to its remaining work — checked with a
scripted injector and closed-form arithmetic on the ideal simulator.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.faults import FaultInjector
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 second per iteration


class ScriptedInjector:
    """Duck-typed FaultInjector firing at scripted productive offsets.

    Each started (or restarted) job consumes the next delay; once the
    script is exhausted no further faults fire, so tests can do exact
    arithmetic on how much work each fault destroyed.
    """

    def __init__(self, delays, progress_loss=0.0):
        self._delays = list(delays)
        self.progress_loss = progress_loss

    @property
    def enabled(self):
        return True

    def sample_fault_delay(self):
        if self._delays:
            return self._delays.pop(0)
        return None


def _run_single(num_iterations, injector, interval=360.0):
    job = JobSpec(profile=UNIT, num_gpus=1, num_iterations=num_iterations)
    sim = ClusterSimulator(
        FifoScheduler(),
        cluster=Cluster(1, 1),
        scheduling_interval=interval,
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        fault_injector=injector,
    )
    return sim.run([job]).jcts[job.job_id]


class TestProgressLossAccounting:
    def test_lossless_requeue_keeps_all_progress(self):
        # Fault after 100 of 300 iterations; the survivor restarts at
        # the next tick (t=360) and needs exactly the remaining 200.
        jct = _run_single(300, ScriptedInjector([100.0], progress_loss=0.0))
        assert jct == pytest.approx(360.0 + 200.0)

    def test_partial_loss_adds_back_executed_fraction(self):
        # 100 iterations executed, half lost: remaining 200 -> 250.
        jct = _run_single(300, ScriptedInjector([100.0], progress_loss=0.5))
        assert jct == pytest.approx(360.0 + 250.0)

    def test_full_loss_restarts_from_scratch(self):
        # All 100 executed iterations lost: remaining back to 300,
        # clamped exactly at the job's total.
        jct = _run_single(300, ScriptedInjector([100.0], progress_loss=1.0))
        assert jct == pytest.approx(360.0 + 300.0)

    def test_loss_compounds_across_repeated_requeues(self):
        # Fault 1 at t=100 (100 executed, 50 lost -> remaining 250),
        # restart at t=360.  Fault 2 after 50 more productive seconds
        # (t=410): total executed 100, remaining 200 -> 250 again,
        # restart at t=720.  Finish 720 + 250.
        jct = _run_single(
            300, ScriptedInjector([100.0, 50.0], progress_loss=0.5)
        )
        assert jct == pytest.approx(720.0 + 250.0)

    def test_loss_ordering_is_monotone(self):
        """More checkpoint loss can never speed a workload up."""
        jcts = [
            _run_single(300, ScriptedInjector([100.0, 50.0], loss))
            for loss in (0.0, 0.25, 0.5, 1.0)
        ]
        assert jcts == sorted(jcts)
        assert jcts[0] < jcts[-1]


def test_disabled_by_default():
    injector = FaultInjector()
    assert not injector.enabled
    assert injector.sample_fault_delay() is None


def test_enabled_samples_positive_delays():
    injector = FaultInjector(mean_time_between_faults=100.0, seed=0)
    assert injector.enabled
    delays = [injector.sample_fault_delay() for _ in range(50)]
    assert all(d > 0 for d in delays)


def test_mean_roughly_matches():
    injector = FaultInjector(mean_time_between_faults=50.0, seed=1)
    delays = [injector.sample_fault_delay() for _ in range(5000)]
    assert sum(delays) / len(delays) == pytest.approx(50.0, rel=0.1)


def test_reproducible():
    a = FaultInjector(mean_time_between_faults=10.0, seed=7)
    b = FaultInjector(mean_time_between_faults=10.0, seed=7)
    assert [a.sample_fault_delay() for _ in range(5)] == [
        b.sample_fault_delay() for _ in range(5)
    ]


def test_validation():
    with pytest.raises(ValueError):
        FaultInjector(mean_time_between_faults=0.0)
    with pytest.raises(ValueError):
        FaultInjector(progress_loss=1.5)


def test_nan_mean_rejected():
    # Regression: NaN slipped through the `<= 0` check (every NaN
    # comparison is False) and poisoned every sampled fault delay.
    with pytest.raises(ValueError, match="must not be NaN"):
        FaultInjector(mean_time_between_faults=float("nan"))


def test_nan_progress_loss_rejected():
    with pytest.raises(ValueError, match="must not be NaN"):
        FaultInjector(
            mean_time_between_faults=100.0, progress_loss=float("nan")
        )
