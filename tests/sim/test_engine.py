"""Tests for the event queue."""

import pytest

from repro.sim.engine import Event, EventKind, EventQueue


def test_empty_queue():
    queue = EventQueue()
    assert len(queue) == 0
    assert not queue
    assert queue.peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(Event(-1.0, EventKind.TICK))


def test_ordering_by_time():
    queue = EventQueue()
    queue.push(Event(5.0, EventKind.TICK))
    queue.push(Event(1.0, EventKind.ARRIVAL, payload=3))
    queue.push(Event(3.0, EventKind.FAULT))
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 3.0, 5.0]


def test_fifo_within_same_time():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.ARRIVAL, payload="first"))
    queue.push(Event(1.0, EventKind.ARRIVAL, payload="second"))
    assert queue.pop().payload == "first"
    assert queue.pop().payload == "second"


def test_peek_does_not_remove():
    queue = EventQueue()
    queue.push(Event(2.0, EventKind.TICK))
    assert queue.peek_time() == 2.0
    assert len(queue) == 1


def test_pop_until():
    queue = EventQueue()
    for t in (1.0, 2.0, 3.0, 4.0):
        queue.push(Event(t, EventKind.TICK))
    due = queue.pop_until(2.5)
    assert [e.time for e in due] == [1.0, 2.0]
    assert len(queue) == 2


def test_pop_until_inclusive():
    queue = EventQueue()
    queue.push(Event(2.0, EventKind.TICK))
    assert len(queue.pop_until(2.0)) == 1


def test_payload_carried():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.ARRIVAL, payload={"job": 9}))
    assert queue.pop().payload == {"job": 9}


# -- tie-breaking determinism ------------------------------------------------
# Same-timestamp events are served strictly in insertion order, whatever
# their kind.  The simulator's replay determinism (and therefore every
# fuzz repro file) depends on this ordering being pinned.


def test_same_time_ties_break_by_insertion_across_kinds():
    queue = EventQueue()
    order = [
        (EventKind.TICK, "tick"),
        (EventKind.FAULT, "fault"),
        (EventKind.ARRIVAL, "arrival"),
        (EventKind.TICK, "tick2"),
    ]
    for kind, payload in order:
        queue.push(Event(7.0, kind, payload=payload))
    assert [queue.pop().payload for _ in range(4)] == [
        "tick", "fault", "arrival", "tick2",
    ]


def test_pop_until_preserves_insertion_order_among_ties():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.ARRIVAL, payload="a"))
    queue.push(Event(2.0, EventKind.TICK, payload="b"))
    queue.push(Event(1.0, EventKind.FAULT, payload="c"))
    queue.push(Event(2.0, EventKind.ARRIVAL, payload="d"))
    assert [e.payload for e in queue.pop_until(2.0)] == ["a", "c", "b", "d"]


def test_ties_stay_fifo_across_interleaved_pops():
    queue = EventQueue()
    queue.push(Event(5.0, EventKind.TICK, payload=0))
    queue.push(Event(5.0, EventKind.TICK, payload=1))
    assert queue.pop().payload == 0
    # A push after a pop of the same timestamp still queues behind the
    # earlier insertion.
    queue.push(Event(5.0, EventKind.TICK, payload=2))
    assert queue.pop().payload == 1
    assert queue.pop().payload == 2


def test_many_ties_pop_in_exact_insertion_order():
    queue = EventQueue()
    for i in range(100):
        queue.push(Event(3.0, EventKind.ARRIVAL, payload=i))
    assert [queue.pop().payload for _ in range(100)] == list(range(100))
