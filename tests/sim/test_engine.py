"""Tests for the event queue."""

import pytest

from repro.sim.engine import Event, EventKind, EventQueue


def test_empty_queue():
    queue = EventQueue()
    assert len(queue) == 0
    assert not queue
    assert queue.peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(Event(-1.0, EventKind.TICK))


def test_ordering_by_time():
    queue = EventQueue()
    queue.push(Event(5.0, EventKind.TICK))
    queue.push(Event(1.0, EventKind.ARRIVAL, payload=3))
    queue.push(Event(3.0, EventKind.FAULT))
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 3.0, 5.0]


def test_fifo_within_same_time():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.ARRIVAL, payload="first"))
    queue.push(Event(1.0, EventKind.ARRIVAL, payload="second"))
    assert queue.pop().payload == "first"
    assert queue.pop().payload == "second"


def test_peek_does_not_remove():
    queue = EventQueue()
    queue.push(Event(2.0, EventKind.TICK))
    assert queue.peek_time() == 2.0
    assert len(queue) == 1


def test_pop_until():
    queue = EventQueue()
    for t in (1.0, 2.0, 3.0, 4.0):
        queue.push(Event(t, EventKind.TICK))
    due = queue.pop_until(2.5)
    assert [e.time for e in due] == [1.0, 2.0]
    assert len(queue) == 2


def test_pop_until_inclusive():
    queue = EventQueue()
    queue.push(Event(2.0, EventKind.TICK))
    assert len(queue.pop_until(2.0)) == 1


def test_payload_carried():
    queue = EventQueue()
    queue.push(Event(1.0, EventKind.ARRIVAL, payload={"job": 9}))
    assert queue.pop().payload == {"job": 9}
