"""Tests for the worker monitor."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler
from repro.sim.faults import FaultInjector
from repro.sim.monitor import WorkerMonitor
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


class TestMonitorUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerMonitor(progress_interval=0.0)

    def test_machine_samples_and_means(self):
        monitor = WorkerMonitor()
        monitor.record_machine(0.0, 10.0, 0, 4, (0.2, 0.0, 0.8, 0.0))
        monitor.record_machine(10.0, 30.0, 0, 4, (0.6, 0.0, 0.4, 0.0))
        assert monitor.machine_ids() == [0]
        util = monitor.machine_utilization(0)
        assert util[0] == pytest.approx((0.2 * 10 + 0.6 * 30) / 40)
        assert util[2] == pytest.approx((0.8 * 10 + 0.4 * 30) / 40)

    def test_unknown_machine_is_zero(self):
        assert WorkerMonitor().machine_utilization(7) == (0.0,) * 4

    def test_busiest_machine(self):
        monitor = WorkerMonitor()
        monitor.record_machine(0.0, 10.0, 0, 1, (0.0, 0.0, 0.2, 0.0))
        monitor.record_machine(0.0, 10.0, 1, 1, (0.0, 0.0, 0.9, 0.0))
        assert monitor.busiest_machine() == 1

    def test_busiest_machine_empty(self):
        assert WorkerMonitor().busiest_machine() is None

    def test_progress_rate_limited(self):
        monitor = WorkerMonitor(progress_interval=100.0)
        monitor.report_progress(0.0, 1, 50.0, 0.0)
        monitor.report_progress(10.0, 1, 45.0, 10.0)  # suppressed
        monitor.report_progress(150.0, 1, 20.0, 150.0)
        assert len(monitor.progress_of(1)) == 2

    def test_fault_reports(self):
        monitor = WorkerMonitor()
        monitor.report_fault(5.0, 3)
        monitor.report_fault(9.0, 3)
        monitor.report_fault(9.0, 4)
        assert monitor.fault_count() == 3
        assert monitor.fault_count(3) == 2
        assert [f.job_id for f in monitor.faults()] == [3, 3, 4]


class TestMonitorInSimulation:
    def test_receives_machine_samples(self):
        monitor = WorkerMonitor()
        specs = [JobSpec(profile=UNIT, num_iterations=100),
                 JobSpec(profile=UNIT, num_iterations=50)]
        ClusterSimulator(
            FifoScheduler(), cluster=Cluster(2, 1), monitor=monitor,
            restart_penalty=0.0,
        ).run(specs, "monitored")
        assert monitor.machine_ids() == [0, 1]
        # The busy machine saw real utilization.
        busiest = monitor.busiest_machine()
        assert sum(monitor.machine_utilization(busiest)) > 0.5

    def test_receives_progress_reports(self):
        monitor = WorkerMonitor(progress_interval=10.0)
        spec = JobSpec(profile=UNIT, num_iterations=500)
        ClusterSimulator(
            FifoScheduler(), cluster=Cluster(1, 1), monitor=monitor,
            restart_penalty=0.0, scheduling_interval=50.0,
        ).run([spec], "monitored")
        reports = monitor.progress_of(spec.job_id)
        assert reports
        remaining = [r.iterations_remaining for r in reports]
        assert remaining == sorted(remaining, reverse=True)

    def test_receives_fault_reports(self):
        monitor = WorkerMonitor()
        spec = JobSpec(profile=UNIT, num_iterations=400)
        ClusterSimulator(
            FifoScheduler(),
            cluster=Cluster(1, 1),
            monitor=monitor,
            fault_injector=FaultInjector(mean_time_between_faults=60.0, seed=2),
            scheduling_interval=50.0,
            restart_penalty=0.0,
        ).run([spec], "faulty")
        assert monitor.fault_count(spec.job_id) >= 1

    def test_idle_machines_report_zero(self):
        monitor = WorkerMonitor()
        spec = JobSpec(profile=UNIT, num_iterations=50)
        ClusterSimulator(
            FifoScheduler(), cluster=Cluster(2, 2), monitor=monitor,
            restart_penalty=0.0,
        ).run([spec], "idle")
        # One of the two machines never ran anything.
        utils = [sum(monitor.machine_utilization(m)) for m in (0, 1)]
        assert min(utils) == 0.0
        assert max(utils) > 0.0
