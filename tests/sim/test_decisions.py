"""Tests for the scheduling-decision audit log."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.muri import MuriScheduler
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler, SrtfScheduler
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.decisions import Decision, DecisionLog
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def run_logged(scheduler, specs, **kwargs):
    log = DecisionLog()
    defaults = dict(
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        scheduling_interval=100.0,
        decision_log=log,
    )
    defaults.update(kwargs)
    ClusterSimulator(scheduler, cluster=Cluster(1, 1), **defaults).run(
        specs, "logged"
    )
    return log


class TestLogUnit:
    def test_empty(self):
        log = DecisionLog()
        assert len(log) == 0
        assert log.churn_rate() == 0.0
        assert log.summary()["decisions"] == 0.0

    def test_record_and_query(self):
        log = DecisionLog()
        log.record(Decision(0.0, "tick", 2, 0, 2, 0, 0, 1, 0))
        log.record(Decision(100.0, "tick", 2, 1, 1, 1, 0, 0, 0))
        assert len(log) == 2
        assert log.total_started == 3
        assert log.total_preemptions == 1
        assert log.churn_rate() == 0.5

    def test_idle_decisions(self):
        log = DecisionLog()
        log.record(Decision(0.0, "tick", 1, 0, 1, 0, 0, 3, 2))
        log.record(Decision(1.0, "tick", 1, 1, 0, 0, 0, 0, 2))
        assert len(log.idle_decisions()) == 1

    def test_decision_to_dict(self):
        decision = Decision(5.0, "completion", 2, 1, 1, 0, 0, 4, 3)
        payload = decision.to_dict()
        assert payload == {
            "time": 5.0,
            "reason": "completion",
            "proposed_groups": 2,
            "kept": 1,
            "started": 1,
            "preempted": 0,
            "unplaced": 0,
            "queue_length": 4,
            "free_gpus": 3,
        }

    def test_log_to_dicts_preserves_order(self):
        log = DecisionLog()
        log.record(Decision(0.0, "tick", 1, 0, 1, 0, 0, 3, 2))
        log.record(Decision(1.0, "completion", 1, 1, 0, 1, 0, 0, 2))
        payloads = log.to_dicts()
        assert [p["time"] for p in payloads] == [0.0, 1.0]
        assert payloads[1]["preempted"] == 1


class TestLogInSimulation:
    def test_records_every_invocation(self):
        specs = [JobSpec(profile=UNIT, num_iterations=250) for _ in range(2)]
        log = run_logged(FifoScheduler(), specs)
        assert len(log) >= 2
        assert all(d.reason in ("tick", "completion") for d in log)

    def test_counts_starts(self):
        specs = [JobSpec(profile=UNIT, num_iterations=100) for _ in range(3)]
        log = run_logged(FifoScheduler(), specs)
        # Three jobs started (serially on one GPU).
        assert log.total_started == 3
        assert log.total_preemptions == 0

    def test_counts_preemptions(self):
        long_job = JobSpec(profile=UNIT, num_iterations=1000)
        short_job = JobSpec(profile=UNIT, num_iterations=10, submit_time=100.0)
        log = run_logged(SrtfScheduler(), [long_job, short_job])
        assert log.total_preemptions >= 1

    def test_stable_muri_plan_has_low_churn(self):
        cpu = StageProfile((0.1, 0.7, 0.1, 0.1))
        gpu = StageProfile((0.1, 0.1, 0.7, 0.1))
        specs = [JobSpec(profile=p, num_iterations=2000) for p in (cpu, gpu)]
        log = run_logged(MuriScheduler(), specs)
        # One group formed once, then kept every tick.
        assert log.total_started == 1
        assert log.churn_rate() == 0.0

    def test_summary_keys(self):
        specs = [JobSpec(profile=UNIT, num_iterations=50)]
        log = run_logged(FifoScheduler(), specs)
        summary = log.summary()
        assert set(summary) == {
            "decisions", "started", "preempted_groups", "churn_rate",
            "idle_decisions",
        }
