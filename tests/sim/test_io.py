"""Tests for simulation-result serialization."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import SrsfScheduler
from repro.sim.io import (
    load_comparison,
    load_result,
    result_from_dict,
    result_to_dict,
    save_comparison,
    save_result,
)
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


@pytest.fixture()
def result():
    specs = [
        JobSpec(profile=UNIT, num_iterations=50),
        JobSpec(profile=UNIT, num_iterations=100, submit_time=10.0),
    ]
    return ClusterSimulator(
        SrsfScheduler(), cluster=Cluster(1, 2), restart_penalty=0.0
    ).run(specs, "io-test")


def test_dict_roundtrip(result):
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.scheduler_name == result.scheduler_name
    assert rebuilt.trace_name == result.trace_name
    assert rebuilt.jcts == result.jcts
    assert rebuilt.finish_times == result.finish_times
    assert rebuilt.avg_jct == pytest.approx(result.avg_jct)
    assert rebuilt.makespan == pytest.approx(result.makespan)
    assert len(rebuilt.timeseries) == len(result.timeseries)
    assert rebuilt.timeseries[0] == result.timeseries[0]


def test_file_roundtrip(result, tmp_path):
    path = tmp_path / "result.json"
    save_result(result, path)
    rebuilt = load_result(path)
    assert rebuilt.jcts == result.jcts
    assert rebuilt.avg_queue_length == pytest.approx(result.avg_queue_length)
    assert rebuilt.avg_utilization() == pytest.approx(result.avg_utilization())


def test_job_ids_stay_ints(result, tmp_path):
    path = tmp_path / "result.json"
    save_result(result, path)
    rebuilt = load_result(path)
    assert all(isinstance(k, int) for k in rebuilt.jcts)


def test_version_check():
    with pytest.raises(ValueError):
        result_from_dict({"format_version": 999})


def test_comparison_roundtrip(result, tmp_path):
    path = tmp_path / "cmp.json"
    save_comparison({"SRSF": result, "copy": result}, path)
    rebuilt = load_comparison(path)
    assert set(rebuilt) == {"SRSF", "copy"}
    assert rebuilt["SRSF"].avg_jct == pytest.approx(result.avg_jct)


def test_comparison_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format_version": 0, "results": {}}')
    with pytest.raises(ValueError):
        load_comparison(path)


def test_speedup_works_after_reload(result, tmp_path):
    path = tmp_path / "result.json"
    save_result(result, path)
    rebuilt = load_result(path)
    speedups = rebuilt.speedup_over(result)
    assert speedups["avg_jct"] == pytest.approx(1.0)
