"""Tests for the contention model."""

import pytest

from repro.sim.contention import (
    DEFAULT_CONTENTION,
    IDEAL_CONTENTION,
    ContentionModel,
)


def test_defaults_monotone_in_group_size():
    factors = [DEFAULT_CONTENTION.factor(size) for size in (1, 2, 3, 4)]
    assert factors == sorted(factors)
    assert factors[0] == 1.0


def test_ideal_is_free():
    for size in (1, 2, 3, 4):
        assert IDEAL_CONTENTION.factor(size) == 1.0
    assert IDEAL_CONTENTION.factor(2, spans_machines=True) == 1.0


def test_unknown_size_falls_back_to_largest():
    model = ContentionModel(factors={1: 1.0, 2: 1.5})
    assert model.factor(7) == 1.5


def test_cross_machine_penalty():
    model = ContentionModel(
        factors={1: 1.0, 2: 1.1}, cross_machine_penalty=1.2
    )
    assert model.factor(2, spans_machines=True) == pytest.approx(1.1 * 1.2)
    assert model.factor(1, spans_machines=True) == pytest.approx(1.2)


def test_validation():
    with pytest.raises(ValueError):
        ContentionModel(factors={2: 1.0})  # size 1 missing
    with pytest.raises(ValueError):
        ContentionModel(factors={1: 0.9})
    with pytest.raises(ValueError):
        ContentionModel(factors={1: 1.0, 0: 1.0})
    with pytest.raises(ValueError):
        ContentionModel(factors={1: 1.0}, cross_machine_penalty=0.5)


def test_invalid_group_size_query():
    with pytest.raises(ValueError):
        DEFAULT_CONTENTION.factor(0)
