"""Tests for simulation metrics."""

import json

import pytest

from repro.jobs.resources import Resource
from repro.sim.metrics import (
    SimulationResult,
    TimePoint,
    percentile,
)


class TestPercentile:
    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_q0_and_q100_are_min_and_max(self):
        values = [7.0, 2.0, 2.0, 11.0]
        assert percentile(values, 0) == 2.0
        assert percentile(values, 100) == 11.0

    def test_presorted_skips_sorting(self):
        values = [1.0, 3.0, 5.0, 9.0]
        for q in (0, 25, 50, 75, 100):
            assert percentile(values, q, presorted=True) == percentile(
                sorted(values), q
            )

    def test_presorted_trusts_caller(self):
        # With presorted=True the input is used as-is; an unsorted list
        # gives a different (wrong) answer, proving no re-sort happens.
        assert percentile([9.0, 1.0], 100, presorted=True) == 1.0


def make_result():
    result = SimulationResult(scheduler_name="X", trace_name="t")
    result.jcts = {0: 100.0, 1: 200.0, 2: 600.0}
    result.finish_times = {0: 150.0, 1: 260.0, 2: 660.0}
    result.submit_times = {0: 50.0, 1: 60.0, 2: 60.0}
    result.timeseries = [
        TimePoint(0.0, 10.0, 4, 2, 0.5, (0.1, 0.2, 0.3, 0.4)),
        TimePoint(10.0, 30.0, 2, 4, 0.25, (0.2, 0.4, 0.6, 0.8)),
    ]
    return result


class TestSimulationResult:
    def test_avg_jct(self):
        assert make_result().avg_jct == pytest.approx(300.0)

    def test_avg_jct_requires_jobs(self):
        with pytest.raises(ValueError):
            SimulationResult("X", "t").avg_jct

    def test_tail_jct(self):
        assert make_result().tail_jct(100) == 600.0

    def test_makespan(self):
        assert make_result().makespan == 660.0

    def test_time_weighted_queue_length(self):
        # (4*10 + 2*30) / 40 = 2.5
        assert make_result().avg_queue_length == pytest.approx(2.5)

    def test_time_weighted_blocking(self):
        # (0.5*10 + 0.25*30) / 40 = 0.3125
        assert make_result().avg_blocking_index == pytest.approx(0.3125)

    def test_avg_utilization(self):
        util = make_result().avg_utilization()
        assert util[0] == pytest.approx((0.1 * 10 + 0.2 * 30) / 40)
        assert util[3] == pytest.approx((0.4 * 10 + 0.8 * 30) / 40)

    def test_utilization_of(self):
        result = make_result()
        assert result.utilization_of(Resource.GPU) == pytest.approx(
            (0.3 * 10 + 0.6 * 30) / 40
        )

    def test_empty_timeseries_averages(self):
        result = SimulationResult("X", "t")
        assert result.avg_queue_length == 0.0

    def test_summary(self):
        summary = make_result().summary()
        assert summary.num_jobs == 3
        assert summary.avg_jct == pytest.approx(300.0)
        assert summary.makespan == 660.0

    def test_speedup_over(self):
        fast, slow = make_result(), make_result()
        slow.jcts = {k: v * 2 for k, v in slow.jcts.items()}
        slow.finish_times = {k: v * 3 for k, v in slow.finish_times.items()}
        speedups = fast.speedup_over(slow)
        assert speedups["avg_jct"] == pytest.approx(2.0)
        assert speedups["makespan"] == pytest.approx(3.0)
        assert speedups["p99_jct"] == pytest.approx(2.0)


class TestSerialization:
    def test_round_trip(self):
        original = make_result()
        original.total_preemptions = 4
        original.total_restart_time = 12.5
        original.wall_clock = 0.75
        restored = SimulationResult.from_dict(original.to_dict())
        assert restored.scheduler_name == original.scheduler_name
        assert restored.trace_name == original.trace_name
        assert restored.jcts == original.jcts
        assert restored.finish_times == original.finish_times
        assert restored.submit_times == original.submit_times
        assert restored.total_preemptions == 4
        assert restored.total_restart_time == 12.5
        assert restored.wall_clock == 0.75
        assert restored.timeseries == original.timeseries

    def test_payload_is_json_compatible(self):
        payload = make_result().to_dict()
        assert payload["format_version"] == SimulationResult.FORMAT_VERSION
        # Job-id keys are strings, as JSON object keys must be.
        assert all(isinstance(k, str) for k in payload["jcts"])
        json.dumps(payload)

    def test_unknown_version_rejected(self):
        payload = make_result().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            SimulationResult.from_dict(payload)

    def test_missing_version_rejected(self):
        payload = make_result().to_dict()
        del payload["format_version"]
        with pytest.raises(ValueError):
            SimulationResult.from_dict(payload)


class TestUtilizationByType:
    def make_typed_result(self):
        result = make_result()
        # Makespan is 660.0 (latest finish time).
        result.gpus_by_type = {"k80": 8, "a100": 4}
        result.gpu_seconds_by_type = {"k80": 2640.0, "a100": 1320.0}
        return result

    def test_per_generation_ratio(self):
        utilization = self.make_typed_result().utilization_by_type()
        assert utilization["k80"] == pytest.approx(2640.0 / (8 * 660.0))
        assert utilization["a100"] == pytest.approx(1320.0 / (4 * 660.0))

    def test_untyped_result_reports_nothing(self):
        assert make_result().utilization_by_type() == {}

    def test_generation_with_no_seconds_reads_zero(self):
        result = self.make_typed_result()
        result.gpu_seconds_by_type = {"k80": 2640.0}
        assert result.utilization_by_type()["a100"] == 0.0

    def test_no_finished_jobs_reports_nothing(self):
        result = SimulationResult(scheduler_name="X", trace_name="t")
        result.gpus_by_type = {"k80": 8}
        assert result.utilization_by_type() == {}

    def test_occupancy_round_trips(self):
        original = self.make_typed_result()
        payload = original.to_dict()
        json.dumps(payload)
        restored = SimulationResult.from_dict(payload)
        assert restored.gpus_by_type == original.gpus_by_type
        assert restored.gpu_seconds_by_type == original.gpu_seconds_by_type
        assert restored.utilization_by_type() == (
            original.utilization_by_type()
        )

    def test_untyped_payload_is_byte_stable(self):
        # Pre-hetero payloads must not grow keys they never had.
        payload = make_result().to_dict()
        assert "gpu_seconds_by_type" not in payload
        assert "gpus_by_type" not in payload


class TestJctCdf:
    def test_endpoints(self):
        result = make_result()
        cdf = result.jct_cdf(points=5)
        assert cdf[0] == (100.0, 0.0)
        assert cdf[-1] == (600.0, 1.0)

    def test_monotone(self):
        cdf = make_result().jct_cdf(points=11)
        jcts = [j for j, _f in cdf]
        fractions = [f for _j, f in cdf]
        assert jcts == sorted(jcts)
        assert fractions == sorted(fractions)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_result().jct_cdf(points=1)
        empty = SimulationResult("X", "t")
        with pytest.raises(ValueError):
            empty.jct_cdf()


class _LazyAscending:
    """A presorted sample of ``n`` ascending floats, never materialized.

    Stands in for the large JCT arrays aggregation pipelines hand to
    :func:`percentile`: big enough to expose float-rank rounding
    without allocating tens of millions of floats.
    """

    def __init__(self, n):
        self._n = n

    def __len__(self):
        return self._n

    def __getitem__(self, index):
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        return float(index)


class TestPercentileRankClamp:
    # Regression: with a reduced-precision q (numpy float32, the dtype
    # aggregation pipelines produce), `last * q / 100.0` promotes to
    # float32 under NEP 50 and rounds past the last index, so the
    # ceil'd high index raised IndexError.

    def test_float32_q_near_100(self):
        numpy = pytest.importorskip("numpy")
        values = _LazyAscending(16_777_236)
        q = numpy.float32(99.99999237060547)  # largest float32 < 100
        assert percentile(values, q, presorted=True) == float(len(values) - 1)

    def test_float32_q_exactly_100(self):
        numpy = pytest.importorskip("numpy")
        values = _LazyAscending(16_777_220)
        q = numpy.float32(100.0)
        assert percentile(values, q, presorted=True) == float(len(values) - 1)

    def test_plain_float_boundaries_unchanged(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 0.0) == 1.0
