"""Property-based tests over whole simulations.

These drive randomized workloads through every scheduler and check the
invariants any correct cluster simulation must satisfy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.models.zoo import DEFAULT_MODELS, get_model
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.sim.simulator import ClusterSimulator

SCHEDULER_NAMES = sorted(SCHEDULERS)


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for index in range(n):
        model = get_model(draw(st.sampled_from(DEFAULT_MODELS)))
        gpus = draw(st.sampled_from([1, 1, 1, 2, 4]))
        iters = draw(st.integers(min_value=1, max_value=400))
        submit = draw(st.floats(min_value=0.0, max_value=2000.0))
        specs.append(
            JobSpec(
                profile=model.stage_profile(gpus),
                num_gpus=gpus,
                submit_time=submit,
                num_iterations=iters,
                model=model.name,
            )
        )
    return specs


@settings(max_examples=15, deadline=None)
@given(workloads(), st.sampled_from(SCHEDULER_NAMES))
def test_simulation_invariants(specs, scheduler_name):
    simulator = ClusterSimulator(
        make_scheduler(scheduler_name),
        cluster=Cluster(2, 4),
        scheduling_interval=120.0,
        restart_penalty=5.0,
    )
    result = simulator.run(specs, "prop")

    # Every job completes exactly once.
    assert set(result.jcts) == {spec.job_id for spec in specs}

    for spec in specs:
        jct = result.jcts[spec.job_id]
        finish = result.finish_times[spec.job_id]
        # JCT accounting is consistent.
        assert jct == pytest.approx(finish - spec.submit_time)
        # A job cannot beat its solo running time.
        assert jct >= spec.total_service_time * 0.999
        assert finish >= spec.submit_time

    # Makespan is the last completion.
    assert result.makespan == pytest.approx(max(result.finish_times.values()))

    # Utilization is a fraction.
    for point in result.timeseries:
        assert 0 <= point.queue_length <= len(specs)
        assert point.running_jobs >= 0
        for value in point.utilization:
            assert 0.0 <= value <= 1.0 + 1e-9


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_simulation_deterministic(specs):
    def run():
        return ClusterSimulator(
            make_scheduler("muri-l"), cluster=Cluster(2, 4)
        ).run(specs_copy, "det")

    # Fresh Job state each run comes from fresh specs... specs are
    # immutable, so reusing them is safe; runtime Jobs are rebuilt.
    specs_copy = specs
    first = run()
    second = run()
    assert first.jcts == second.jcts
    assert first.makespan == second.makespan


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_makespan_bounded_below_by_work(specs):
    """Makespan >= total GPU-work / capacity (no super-linear speedup
    beyond interleaving's resource bound is possible for one resource).
    """
    cluster = Cluster(2, 4)
    result = ClusterSimulator(
        make_scheduler("muri-s"), cluster=cluster
    ).run(specs, "bound")
    # Per-resource work bound: each resource can serve at most
    # total_gpus seconds of that resource's stage time per second.
    for resource in range(4):
        work = sum(
            spec.profile.durations[resource] * spec.num_iterations * spec.num_gpus
            for spec in specs
        )
        assert result.makespan >= work / cluster.total_gpus - 1e-6
