"""Unit tests for the ``repro.bench`` suite plumbing.

The timing suites themselves run in CI's ``bench`` job; here we pin
the cheap, deterministic parts: workload seeding, percentile math,
document round-tripping, and exactly which metrics the regression
gate sees.
"""

from pathlib import Path

from repro.bench import (
    ELASTIC_BENCH_FILE,
    FLEET_BENCH_FILE,
    GROUPING_BENCH_FILE,
    HETERO_BENCH_FILE,
    SCHEMA_VERSION,
    SERVICE_BENCH_FILE,
    calibrate,
    gated_metrics,
    load_bench,
    write_bench,
)
from repro.bench.suite import _make_jobs, _percentile


class TestWorkloads:
    def test_make_jobs_is_seeded(self):
        first = _make_jobs(32, seed=5)
        second = _make_jobs(32, seed=5)
        assert [j.spec.profile.durations for j in first] == [
            j.spec.profile.durations for j in second
        ]
        assert [j.num_gpus for j in first] == [j.num_gpus for j in second]

    def test_make_jobs_respects_gpu_choices(self):
        jobs = _make_jobs(64, seed=0, gpu_choices=(2, 4))
        assert {j.num_gpus for j in jobs} <= {2, 4}

    def test_calibrate_is_positive(self):
        assert calibrate(repeats=1) > 0


class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert _percentile(samples, 0.0) == 1.0
        assert _percentile(samples, 0.5) == 3.0
        assert _percentile(samples, 0.99) == 5.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.5) == 7.0


def _document():
    return {
        "schema": SCHEMA_VERSION,
        "suite": "grouping",
        "benchmarks": {
            "cold_group_64": {
                "jobs": 64,
                "seconds": 0.5,
                "normalized": 25.0,
                "calibration": 0.02,
            },
            "warm_regroup": {
                "p50_seconds": 0.001,
                "p50_normalized": 0.05,
                "p99_seconds": 0.008,
                "p99_normalized": 0.4,
            },
        },
    }


class TestGatedMetrics:
    def test_flattens_normalized_only(self):
        flat = gated_metrics(_document())
        assert flat == {
            "cold_group_64.normalized": 25.0,
            "warm_regroup.p99_normalized": 0.4,
        }

    def test_p50_is_never_gated(self):
        assert not any(
            ".p50" in name for name in gated_metrics(_document())
        )

    def test_raw_seconds_and_counts_are_not_gated(self):
        flat = gated_metrics(_document())
        assert "cold_group_64.seconds" not in flat
        assert "cold_group_64.jobs" not in flat
        assert "cold_group_64.calibration" not in flat

    def test_empty_document(self):
        assert gated_metrics({}) == {}


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / GROUPING_BENCH_FILE
        write_bench(_document(), path)
        assert load_bench(path) == _document()

    def test_file_constants_are_distinct(self):
        assert len({
            GROUPING_BENCH_FILE, SERVICE_BENCH_FILE, FLEET_BENCH_FILE,
            ELASTIC_BENCH_FILE, HETERO_BENCH_FILE,
        }) == 5


class TestCommittedBaselines:
    """The repo-root BENCH files must stay loadable and acceptable."""

    REPO_ROOT = Path(__file__).resolve().parent.parent

    def test_grouping_baseline(self):
        doc = load_bench(self.REPO_ROOT / GROUPING_BENCH_FILE)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "grouping"
        cold = doc["benchmarks"]["cold_group_1024"]
        # The PR acceptance bar: >= 3x faster than the ~2.5 s PR-1
        # baseline for a 1,024-job cold grouping.
        assert cold["seconds"] <= 0.83
        warm = doc["benchmarks"]["warm_regroup"]
        assert warm["p99_seconds"] < 0.010

    def test_service_baseline(self):
        doc = load_bench(self.REPO_ROOT / SERVICE_BENCH_FILE)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "service"
        assert gated_metrics(doc)

    def test_fleet_baseline(self):
        doc = load_bench(self.REPO_ROOT / FLEET_BENCH_FILE)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "fleet"
        gated = gated_metrics(doc)
        assert "fleet_submit.p99_normalized" in gated
        assert "fleet_drain.job_normalized" in gated
        # Admission+routing is microseconds; a p99 over a millisecond
        # would mean the fleet layer grew a scan on the submit path.
        submit = doc["benchmarks"]["fleet_submit"]
        assert submit["p99_seconds"] < 0.001

    def test_elastic_baseline(self):
        doc = load_bench(self.REPO_ROOT / ELASTIC_BENCH_FILE)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "elastic"
        gated = gated_metrics(doc)
        assert "cold_elastic_group.normalized" in gated
        assert "renegotiate_step.p99_normalized" in gated
        cold = doc["benchmarks"]["cold_elastic_group"]
        # The cold step must actually exercise the elastic path.
        assert cold["resizes"] > 0
        # Renegotiation is a per-tick cost: its tail must stay well
        # under the warm-regroup latency contract.
        step = doc["benchmarks"]["renegotiate_step"]
        assert step["p99_seconds"] < 0.010

    def test_hetero_baseline(self):
        doc = load_bench(self.REPO_ROOT / HETERO_BENCH_FILE)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["suite"] == "hetero"
        gated = gated_metrics(doc)
        # The placement claim is the gate: the ratio is simulated time
        # (aware / baseline), so it must sit strictly under 1.0.
        assert gated["hetero_placement.makespan_ratio_normalized"] < 1.0
        entry = doc["benchmarks"]["hetero_placement"]
        assert entry["improvement"] > 0.0
        assert set(entry["utilization_by_type"]) == {"baseline", "aware"}
