"""Tests for the model zoo (Tables 1 and 3)."""

import pytest

from repro.jobs.resources import Resource
from repro.models.zoo import (
    DEFAULT_MODELS,
    MODEL_ZOO,
    MODELS_BY_BOTTLENECK,
    get_model,
    list_models,
    models_for_bottlenecks,
)

#: Table 3 bottleneck column.
TABLE3_BOTTLENECKS = {
    "ResNet18": Resource.STORAGE,
    "ShuffleNet": Resource.STORAGE,
    "VGG16": Resource.NETWORK,
    "VGG19": Resource.NETWORK,
    "Bert": Resource.GPU,
    "GPT-2": Resource.GPU,
    "A2C": Resource.CPU,
    "DQN": Resource.CPU,
}

#: Table 1 rows exactly as published.
TABLE1 = {
    "ShuffleNet": (60.0, 18.0, 6.0, 2.0),
    "VGG19": (24.0, 4.0, 26.0, 41.0),
    "GPT-2": (0.06, 0.03, 85.0, 28.0),
    "A2C": (0.0, 91.0, 3.0, 0.2),
}


def test_all_eight_models_present():
    assert len(MODEL_ZOO) == 8
    assert set(DEFAULT_MODELS) == set(MODEL_ZOO)


@pytest.mark.parametrize("name,bottleneck", TABLE3_BOTTLENECKS.items())
def test_table3_bottlenecks(name, bottleneck):
    assert get_model(name).bottleneck == bottleneck


@pytest.mark.parametrize("name,percentages", TABLE1.items())
def test_table1_percentages_published(name, percentages):
    model = get_model(name)
    assert model.stage_percentages == percentages
    assert model.published


def test_synthesized_models_flagged():
    for name in ("ResNet18", "VGG16", "Bert", "DQN"):
        assert not get_model(name).published


@pytest.mark.parametrize("name", DEFAULT_MODELS)
def test_profile_bottleneck_matches_declared(name):
    model = get_model(name)
    profile = model.stage_profile(num_gpus=4)
    assert profile.bottleneck == model.bottleneck


@pytest.mark.parametrize("name", DEFAULT_MODELS)
def test_profile_iteration_time_matches_reference(name):
    model = get_model(name)
    assert model.stage_profile(4).iteration_time == pytest.approx(
        model.iteration_time
    )


def test_profile_identical_across_gpu_counts():
    # The paper profiles once per model and reuses the profile.
    model = get_model("VGG19")
    assert model.stage_profile(1).durations == model.stage_profile(16).durations


def test_network_scaling_grows_sync_stage():
    model = get_model("VGG19")
    base = model.stage_profile(32)
    scaled = model.stage_profile(32, network_scaling=0.5)
    assert scaled.duration(Resource.NETWORK) > base.duration(Resource.NETWORK)
    assert scaled.duration(Resource.GPU) == base.duration(Resource.GPU)


def test_throughput_definition():
    model = get_model("ShuffleNet")
    assert model.throughput(16) == pytest.approx(
        model.batch_size * 16 / model.stage_profile(16).iteration_time
    )


def test_table2_separate_throughputs_roughly_match_paper():
    """Table 2 'Separate Tput' row: 2041 / 1811 / 134 / 890 samples/s."""
    expected = {"ShuffleNet": 2041, "A2C": 1811, "GPT-2": 134, "VGG16": 890}
    for name, target in expected.items():
        measured = get_model(name).throughput(16)
        assert measured == pytest.approx(target, rel=0.15)


def test_normalized_percentages_sum_to_one():
    for name in DEFAULT_MODELS:
        values = get_model(name).normalized_percentages()
        assert sum(values.values()) == pytest.approx(1.0)


def test_lookup_case_insensitive():
    assert get_model("gpt-2").name == "GPT-2"
    assert get_model("SHUFFLENET").name == "ShuffleNet"


def test_lookup_unknown():
    with pytest.raises(KeyError):
        get_model("AlexNet")


def test_list_models_order():
    assert list_models() == DEFAULT_MODELS


def test_bottleneck_index_has_two_models_each():
    for resource in Resource:
        assert len(MODELS_BY_BOTTLENECK[resource]) == 2


class TestModelsForBottlenecks:
    def test_num_types_one(self):
        names = models_for_bottlenecks(num_types=1)
        assert set(names) == {"ResNet18", "ShuffleNet"}

    def test_num_types_four_is_everything(self):
        assert set(models_for_bottlenecks(num_types=4)) == set(DEFAULT_MODELS)

    def test_num_types_monotone(self):
        previous = set()
        for k in (1, 2, 3, 4):
            current = set(models_for_bottlenecks(num_types=k))
            assert previous <= current
            previous = current

    def test_explicit_map(self):
        names = models_for_bottlenecks(bottlenecks={Resource.GPU: True})
        assert set(names) == {"Bert", "GPT-2"}

    def test_requires_exactly_one_argument(self):
        with pytest.raises(ValueError):
            models_for_bottlenecks()
        with pytest.raises(ValueError):
            models_for_bottlenecks(bottlenecks={Resource.GPU: True}, num_types=2)

    def test_invalid_num_types(self):
        with pytest.raises(ValueError):
            models_for_bottlenecks(num_types=0)
        with pytest.raises(ValueError):
            models_for_bottlenecks(num_types=5)

    def test_empty_selection(self):
        with pytest.raises(ValueError):
            models_for_bottlenecks(bottlenecks={Resource.GPU: False})
