"""Tests for the bootstrap statistics helpers."""

import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    bootstrap_speedup_ci,
    multi_seed_speedups,
    summarize_speedups,
)


class TestConfidenceInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(1.0, 2.0, 1.0, 0.95)

    def test_contains(self):
        ci = ConfidenceInterval(1.5, 1.0, 2.0, 0.95)
        assert 1.5 in ci
        assert 0.5 not in ci

    def test_excludes(self):
        ci = ConfidenceInterval(1.5, 1.2, 2.0, 0.95)
        assert ci.excludes(1.0)
        assert not ci.excludes(1.5)

    def test_width(self):
        assert ConfidenceInterval(1.5, 1.0, 2.0, 0.95).width == 1.0


class TestBootstrapMean:
    def test_empty(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.0)

    def test_point_mass(self):
        ci = bootstrap_mean_ci([3.0] * 20)
        assert ci.estimate == 3.0
        assert ci.low == ci.high == 3.0

    def test_contains_true_mean_for_tight_sample(self):
        values = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.3]
        ci = bootstrap_mean_ci(values, seed=1)
        assert ci.estimate in ci
        assert ci.low < 10.0 < ci.high

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean_ci(values, seed=7)
        b = bootstrap_mean_ci(values, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_more_data_tightens(self):
        import random

        rng = random.Random(0)
        small = [rng.gauss(5, 1) for _ in range(8)]
        large = [rng.gauss(5, 1) for _ in range(256)]
        assert bootstrap_mean_ci(large).width < bootstrap_mean_ci(small).width


class TestBootstrapSpeedup:
    def test_empty(self):
        with pytest.raises(ValueError):
            bootstrap_speedup_ci([], [1.0])

    def test_clear_speedup_excludes_one(self):
        baseline = [10.0, 11.0, 9.0, 10.5, 9.5, 10.4, 10.8, 9.2]
        treatment = [5.0, 5.5, 4.5, 5.2, 4.8, 5.3, 5.6, 4.7]
        ci = bootstrap_speedup_ci(baseline, treatment, seed=1)
        assert ci.estimate == pytest.approx(2.0, rel=0.05)
        assert ci.excludes(1.0)

    def test_no_difference_contains_one(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 10.7, 9.4]
        ci = bootstrap_speedup_ci(values, list(values), seed=2)
        assert 1.0 in ci


class TestMultiSeed:
    def test_collects_per_seed_ratio(self):
        speedups = multi_seed_speedups(
            lambda seed: (10.0 + seed, 5.0), seeds=[0, 1, 2]
        )
        assert speedups == [2.0, 2.2, 2.4]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            multi_seed_speedups(lambda seed: (1.0, 0.0), seeds=[0])

    def test_summary(self):
        summary = summarize_speedups([1.8, 2.0, 2.2, 1.9, 2.1])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.8
        assert summary["max"] == 2.2
        assert summary["n"] == 5
        assert summary["ci_low"] <= summary["mean"] <= summary["ci_high"]
