"""Tests for the capacity-planning helpers."""

import pytest

from repro.analysis.capacity import capacity_sweep, equivalent_capacity
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.registry import make_scheduler

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def workload(n=24, iters=200):
    return [JobSpec(profile=UNIT, num_iterations=iters) for _ in range(n)]


class TestSweep:
    def test_structure(self):
        sweep = capacity_sweep(
            workload(),
            {"SRSF": lambda: make_scheduler("srsf")},
            machine_counts=(1, 2),
            gpus_per_machine=4,
        )
        assert set(sweep) == {1, 2}
        assert set(sweep[1]) == {"SRSF"}

    def test_more_gpus_never_hurt(self):
        sweep = capacity_sweep(
            workload(),
            {"SRSF": lambda: make_scheduler("srsf")},
            machine_counts=(1, 2, 4),
            gpus_per_machine=4,
            restart_penalty=0.0,
        )
        jcts = [sweep[m]["SRSF"].avg_jct for m in (1, 2, 4)]
        assert jcts == sorted(jcts, reverse=True)

    def test_empty_counts(self):
        with pytest.raises(ValueError):
            capacity_sweep(workload(), {}, machine_counts=())

    def test_oversized_jobs_dropped_uniformly(self):
        specs = workload() + [JobSpec(profile=UNIT, num_gpus=32,
                                      num_iterations=10)]
        sweep = capacity_sweep(
            specs,
            {"SRSF": lambda: make_scheduler("srsf")},
            machine_counts=(1, 4),
            gpus_per_machine=4,
        )
        # The 32-GPU job is absent at every size (smallest is 4 GPUs).
        assert sweep[4]["SRSF"].num_jobs == len(workload())

    def test_nothing_fits(self):
        with pytest.raises(ValueError):
            capacity_sweep(
                [JobSpec(profile=UNIT, num_gpus=64, num_iterations=1)],
                {"SRSF": lambda: make_scheduler("srsf")},
                machine_counts=(1,),
                gpus_per_machine=4,
            )


class TestEquivalentCapacity:
    def test_finds_minimum(self):
        specs = workload()
        # Measure what 4 machines achieve, then search for it.
        sweep = capacity_sweep(
            specs,
            {"SRSF": lambda: make_scheduler("srsf")},
            machine_counts=(4,),
            gpus_per_machine=4,
            restart_penalty=0.0,
        )
        target = sweep[4]["SRSF"].avg_jct
        needed = equivalent_capacity(
            specs,
            lambda: make_scheduler("srsf"),
            target_value=target * 1.001,
            machine_range=(1, 6),
            gpus_per_machine=4,
            restart_penalty=0.0,
        )
        assert needed is not None
        assert needed <= 4

    def test_unreachable_target(self):
        needed = equivalent_capacity(
            workload(),
            lambda: make_scheduler("srsf"),
            target_value=0.001,  # impossible JCT
            machine_range=(1, 2),
            gpus_per_machine=4,
        )
        assert needed is None

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            equivalent_capacity(
                workload(), lambda: make_scheduler("srsf"),
                target_value=1.0, machine_range=(3, 2),
            )

    def test_muri_needs_fewer_gpus_under_contention(self):
        """The headline capacity story: Muri matches the baseline's
        full-cluster JCT on a smaller cluster."""
        profiles = [
            StageProfile((0.7, 0.1, 0.1, 0.1)),
            StageProfile((0.1, 0.7, 0.1, 0.1)),
            StageProfile((0.1, 0.1, 0.7, 0.1)),
            StageProfile((0.1, 0.1, 0.1, 0.7)),
        ]
        specs = [
            JobSpec(profile=profiles[i % 4], num_iterations=300)
            for i in range(32)
        ]
        baseline = capacity_sweep(
            specs,
            {"SRSF": lambda: make_scheduler("srsf")},
            machine_counts=(4,),
            gpus_per_machine=2,
            restart_penalty=0.0,
        )[4]["SRSF"].avg_jct
        needed = equivalent_capacity(
            specs,
            lambda: make_scheduler("muri-s"),
            target_value=baseline,
            machine_range=(1, 4),
            gpus_per_machine=2,
            restart_penalty=0.0,
        )
        assert needed is not None
        assert needed < 4
