"""Tests for the text-mode schedule visualization."""

import pytest

from repro.analysis.viz import render_group_schedule, render_sparkline
from repro.core.group import JobGroup
from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile

STORAGE = StageProfile((0.7, 0.1, 0.1, 0.1))
GPU = StageProfile((0.1, 0.1, 0.7, 0.1))


def make_group():
    jobs = [
        Job(JobSpec(profile=STORAGE, num_iterations=10, name="io-job")),
        Job(JobSpec(profile=GPU, num_iterations=10, name="gpu-job")),
    ]
    result = MultiRoundGrouper().group(jobs, capacity=1)
    assert len(result.groups) == 1
    return result.groups[0]


class TestGroupSchedule:
    def test_one_row_per_job(self):
        art = render_group_schedule(make_group())
        lines = art.splitlines()
        assert "io-job" in lines[1]
        assert "gpu-job" in lines[2]

    def test_header_has_period_and_gamma(self):
        group = make_group()
        art = render_group_schedule(group)
        assert f"{group.believed_period:.3f}" in art
        assert "gamma" in art

    def test_legend_names_stages(self):
        art = render_group_schedule(make_group())
        for word in ("load_data", "preprocess", "propagate", "synchronize"):
            assert word in art

    def test_all_four_resources_marked(self):
        art = render_group_schedule(make_group())
        body = art.splitlines()[1:-1]
        marks = "".join(body)
        for char in "SCGN":
            assert char in marks

    def test_rows_align(self):
        art = render_group_schedule(make_group(), width=40)
        rows = [line for line in art.splitlines() if "|" in line]
        assert len({len(row) for row in rows}) == 1

    def test_solo_group_renders(self):
        job = Job(JobSpec(profile=GPU, num_iterations=5, name="solo"))
        art = render_group_schedule(JobGroup.solo(job))
        assert "solo" in art

    def test_true_vs_believed(self):
        job = Job(JobSpec(profile=GPU, num_iterations=5, name="j"))
        group = JobGroup.solo(job, believed_profile=GPU.scaled(2.0))
        believed = render_group_schedule(group, use_believed=True)
        actual = render_group_schedule(group, use_believed=False)
        assert "2.000" in believed  # 2x iteration time
        assert "1.000" in actual


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_length_matches(self):
        assert len(render_sparkline([0, 1, 2, 3])) == 4

    def test_monotone_values_monotone_glyphs(self):
        line = render_sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert list(line) == sorted(line, key=" ▁▂▃▄▅▆▇█".index)

    def test_all_zero(self):
        assert set(render_sparkline([0.0, 0.0])) == {" "}

    def test_custom_ceiling(self):
        low = render_sparkline([0.5], maximum=1.0)
        high = render_sparkline([0.5], maximum=0.5)
        assert " ▁▂▃▄▅▆▇█".index(high) > " ▁▂▃▄▅▆▇█".index(low)

    def test_downsampling(self):
        line = render_sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_values_clamped(self):
        line = render_sparkline([5.0], maximum=1.0)
        assert line == "█"


def test_single_stage_job_renders():
    """A job using only one resource renders as one full slot."""
    from repro.jobs.job import Job, JobSpec
    from repro.jobs.stage import StageProfile

    job = Job(JobSpec(profile=StageProfile((1.0, 0, 0, 0)),
                      num_iterations=1, name="io-only"))
    art = render_group_schedule(JobGroup.solo(job))
    body = art.splitlines()[1]
    assert "io-only" in body
    assert "S" in body
    assert not any(c in body for c in "CGN")
