"""Smoke and shape tests for the experiment runners.

These use deliberately tiny workloads: they validate plumbing and the
qualitative shape, not the headline numbers (the benchmarks do that).
"""

import pytest

from repro.analysis.experiments import (
    ablation_comparison,
    group_size_comparison,
    job_type_sweep,
    normalized_metrics,
    profiling_noise_sweep,
    run_schedulers,
    simulation_comparison,
    table1_stage_percentages,
    table2_interleaving_example,
    compare_testbed as run_compare_testbed,
)
from repro.schedulers.registry import make_scheduler
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

SMALL = 60


def test_table1_rows():
    rows = table1_stage_percentages()
    assert [row[0] for row in rows] == ["ShuffleNet", "VGG19", "GPT-2", "A2C"]
    shufflenet = rows[0]
    assert shufflenet[1:] == (60.0, 18.0, 6.0, 2.0)


def test_table2_total_speedup_near_two():
    table = table2_interleaving_example()
    total = table["__total__"]["total_normalized_tput"]
    assert 1.7 <= total <= 2.4
    for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16"):
        row = table[name]
        assert 0 < row["normalized_tput"] <= 1
        assert row["sharing_tput"] < row["separate_tput"]


def test_run_schedulers_and_normalization():
    trace = generate_trace("1", num_jobs=SMALL, seed=0)
    specs = build_jobs(trace, seed=0)
    results = run_schedulers(
        specs,
        {"SRSF": make_scheduler("srsf"), "Muri-S": make_scheduler("muri-s")},
        trace.name,
    )
    rows = normalized_metrics(results, "Muri-S")
    assert rows["Normalized JCT"]["Muri-S"] == pytest.approx(1.0)
    assert rows["Normalized Makespan"]["Muri-S"] == pytest.approx(1.0)
    assert rows["Normalized JCT"]["SRSF"] > 0


def test_compare_testbed_known():
    results, rows = run_compare_testbed(duration_known=True, num_jobs=SMALL)
    assert set(results) == {"SRTF", "SRSF", "Muri-S"}
    assert rows["Normalized JCT"]["Muri-S"] == pytest.approx(1.0)


def test_compare_testbed_unknown():
    results, rows = run_compare_testbed(duration_known=False, num_jobs=SMALL)
    assert set(results) == {"Tiresias", "Themis", "Muri-L"}
    assert rows["Normalized 99th %-ile JCT"]["Muri-L"] == pytest.approx(1.0)


def test_simulation_comparison_structure():
    sweep = simulation_comparison(
        duration_known=False, trace_ids=("3",), num_jobs=SMALL
    )
    assert set(sweep) == {"3"}
    assert set(sweep["3"]) == {"Tiresias", "AntMan", "Themis"}
    for speedups in sweep["3"].values():
        assert set(speedups) == {"avg_jct", "makespan", "p99_jct"}
        assert all(v > 0 for v in speedups.values())


def test_ablation_structure():
    sweep = ablation_comparison(trace_ids=("1",), num_jobs=SMALL)
    variants = sweep["1"]
    assert variants["Muri-L"]["avg_jct"] == pytest.approx(1.0)
    assert variants["Muri-L w/ worst ordering"]["avg_jct"] >= 0.5


def test_group_size_structure():
    sweep = group_size_comparison(trace_ids=("1",), num_jobs=40)
    row = sweep["1"]
    assert row["AntMan"]["avg_jct"] == pytest.approx(1.0)
    assert set(row) == {"AntMan", "Muri-L-2", "Muri-L-3", "Muri-L-4"}


def test_job_type_sweep_structure():
    sweep = job_type_sweep(num_types_values=(1, 4), num_jobs=SMALL)
    assert set(sweep) == {1, 4}
    for value in sweep.values():
        assert set(value) == {"Muri-S/SRTF", "Muri-L/Tiresias"}


def test_noise_sweep_normalized_to_zero_noise():
    sweep = profiling_noise_sweep(noise_levels=(0.0, 1.0), num_jobs=SMALL)
    assert sweep[0.0]["avg_jct"] == pytest.approx(1.0)
    assert sweep[0.0]["makespan"] == pytest.approx(1.0)
    assert sweep[1.0]["avg_jct"] > 0


def test_detailed_metrics_runner():
    from repro.analysis.experiments import detailed_metrics

    results = detailed_metrics(num_jobs=40, seed=0, duration_known=False)
    assert set(results) == {"Tiresias", "Themis", "Muri-L"}
    for result in results.values():
        assert result.timeseries
