"""Tests for the one-shot reproduction runner."""

import pytest

from repro.analysis.reproduce import ARTIFACTS, reproduce_all


def test_artifact_ids_cover_the_paper():
    ids = [artifact_id for artifact_id, _h, _r in ARTIFACTS]
    assert ids == [
        "table1", "table2", "table4", "table5",
        "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    ]


def test_unknown_artifact_rejected():
    with pytest.raises(KeyError):
        reproduce_all(num_jobs=10, artifacts=["fig99"])


def test_subset_report():
    seen = []
    report = reproduce_all(
        num_jobs=30,
        artifacts=["table1", "table2"],
        progress=seen.append,
    )
    assert seen == ["table1", "table2"]
    assert "# Muri reproduction report" in report
    assert "Table 1" in report and "Table 2" in report
    assert "Figure 9" not in report
    assert "ShuffleNet" in report


def test_small_experiment_artifacts_run():
    report = reproduce_all(num_jobs=30, artifacts=["fig13", "fig14"])
    assert "Figure 13" in report
    assert "Muri-L/Tiresias" in report
    assert "Norm. makespan" in report


def test_cli_reproduce(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.md"
    code = main([
        "reproduce", "--jobs", "25", "--artifacts", "table2",
        "--out", str(out),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "... table2" in captured.out
    assert "TOTAL" in out.read_text()
