"""Tests for report formatting."""

from repro.analysis.report import format_series, format_speedup_table, format_table


class TestFormatTable:
    def test_basic(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "2.50" in text
        assert "3.25" in text

    def test_title(self):
        text = format_table(["c"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_alignment(self):
        text = format_table(["name", "v"], [["longer-name", 1.0], ["s", 2.0]])
        lines = text.splitlines()
        # All data lines have the same separator column position.
        assert lines[2].index("1.00") == lines[3].index("2.00")

    def test_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text


class TestSpeedupTable:
    def test_rows_and_columns(self):
        rows = {
            "Normalized JCT": {"SRTF": 2.12, "Muri-S": 1.0},
            "Normalized Makespan": {"SRTF": 1.56, "Muri-S": 1.0},
        }
        text = format_speedup_table(rows, ["SRTF", "Muri-S"], title="Table 4")
        assert "Table 4" in text
        assert "2.12" in text
        assert "Normalized Makespan" in text

    def test_missing_value_is_nan(self):
        rows = {"m": {"A": 1.0}}
        text = format_speedup_table(rows, ["A", "B"])
        assert "nan" in text


class TestSeries:
    def test_series(self):
        text = format_series(
            "noise", [0.0, 0.5], {"jct": [1.0, 1.2], "makespan": [1.0, 1.0]}
        )
        assert "noise" in text
        assert "1.20" in text
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two data rows
