"""Tests for the resource profiler (dry runs, caching, estimates)."""

import pytest

from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.profiler.noise import UniformNoise
from repro.profiler.profiler import ResourceProfiler

GPU = StageProfile((0.1, 0.1, 0.7, 0.1))
CPU = StageProfile((0.1, 0.7, 0.1, 0.1))


def make_spec(profile=GPU, model="GPT-2", gpus=1):
    return JobSpec(profile=profile, num_gpus=gpus, num_iterations=10, model=model)


def test_exact_without_noise():
    profiler = ResourceProfiler()
    spec = make_spec()
    assert profiler.profile(spec).durations == pytest.approx(GPU.durations)


def test_validation():
    with pytest.raises(ValueError):
        ResourceProfiler(num_dry_runs=0)


def test_cache_by_model():
    profiler = ResourceProfiler()
    a, b = make_spec(model="Bert"), make_spec(model="Bert")
    profiler.profile(a)
    profiler.profile(b)
    assert profiler.stats.cache_misses == 1
    assert profiler.stats.cache_hits == 1


def test_cache_key_includes_gpu_count():
    profiler = ResourceProfiler()
    profiler.profile(make_spec(model="Bert", gpus=1))
    profiler.profile(make_spec(model="Bert", gpus=4))
    assert profiler.stats.cache_misses == 2


def test_cache_disabled():
    profiler = ResourceProfiler(cache_by_model=False)
    profiler.profile(make_spec())
    profiler.profile(make_spec())
    assert profiler.stats.cache_misses == 2
    assert profiler.stats.cache_hits == 0


def test_dry_run_count():
    profiler = ResourceProfiler(num_dry_runs=7)
    profiler.profile(make_spec())
    assert profiler.stats.dry_runs == 7


def test_noise_is_averaged():
    noisy = ResourceProfiler(
        noise=UniformNoise(0.5), num_dry_runs=200, seed=0, cache_by_model=False
    )
    measured = noisy.profile(make_spec())
    # Averaging 200 symmetric samples lands near the truth.
    for truth, value in zip(GPU.durations, measured.durations):
        assert value == pytest.approx(truth, rel=0.15)


def test_single_dry_run_keeps_noise():
    noisy = ResourceProfiler(
        noise=UniformNoise(0.9), num_dry_runs=1, seed=1, cache_by_model=False
    )
    measured = noisy.profile(make_spec())
    assert measured.durations != pytest.approx(GPU.durations)


def test_estimate_group_efficiency_uses_measured_profiles():
    profiler = ResourceProfiler()
    specs = [make_spec(GPU, "GPT-2"), make_spec(CPU, "A2C")]
    gamma = profiler.estimate_group_efficiency(specs)
    from repro.core.efficiency import interleaving_efficiency

    assert gamma == pytest.approx(interleaving_efficiency((GPU, CPU)))


def test_invalidate_all():
    profiler = ResourceProfiler()
    profiler.profile(make_spec(model="Bert"))
    profiler.invalidate()
    profiler.profile(make_spec(model="Bert"))
    assert profiler.stats.cache_misses == 2


def test_invalidate_one_model():
    profiler = ResourceProfiler()
    profiler.profile(make_spec(model="Bert"))
    profiler.profile(make_spec(CPU, model="A2C"))
    profiler.invalidate("Bert")
    profiler.profile(make_spec(model="Bert"))
    profiler.profile(make_spec(CPU, model="A2C"))
    assert profiler.stats.cache_misses == 3
    assert profiler.stats.cache_hits == 1
