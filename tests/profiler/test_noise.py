"""Tests for the profiling noise models (Fig. 14)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs.stage import StageProfile
from repro.profiler.noise import GaussianNoise, NoNoise, UniformNoise

PROFILE = StageProfile((0.3, 0.2, 0.4, 0.1))


def test_no_noise_is_identity():
    rng = random.Random(0)
    assert NoNoise().perturb(PROFILE, rng) is PROFILE


def test_uniform_level_zero_is_identity():
    rng = random.Random(0)
    assert UniformNoise(0.0).perturb(PROFILE, rng) is PROFILE


def test_uniform_level_validation():
    with pytest.raises(ValueError):
        UniformNoise(-0.1)
    with pytest.raises(ValueError):
        UniformNoise(1.1)


def test_uniform_bounds():
    """Paper's model: each stage scaled by a factor in [1-n, 1+n]."""
    rng = random.Random(1)
    noise = UniformNoise(0.3)
    for _ in range(50):
        noisy = noise.perturb(PROFILE, rng)
        for truth, measured in zip(PROFILE.durations, noisy.durations):
            assert truth * 0.7 - 1e-12 <= measured <= truth * 1.3 + 1e-12


def test_uniform_perturbs_stages_independently():
    rng = random.Random(2)
    noisy = UniformNoise(0.5).perturb(PROFILE, rng)
    ratios = {
        round(measured / truth, 6)
        for truth, measured in zip(PROFILE.durations, noisy.durations)
    }
    assert len(ratios) > 1


def test_uniform_reproducible_with_seeded_rng():
    a = UniformNoise(0.4).perturb(PROFILE, random.Random(7))
    b = UniformNoise(0.4).perturb(PROFILE, random.Random(7))
    assert a.durations == b.durations


def test_gaussian_validation():
    with pytest.raises(ValueError):
        GaussianNoise(-1.0)


def test_gaussian_sigma_zero_identity():
    assert GaussianNoise(0.0).perturb(PROFILE, random.Random(0)) is PROFILE


def test_gaussian_stays_positive():
    rng = random.Random(3)
    noise = GaussianNoise(2.0)
    for _ in range(100):
        noisy = noise.perturb(PROFILE, rng)
        assert all(d > 0 for d in noisy.durations)


@settings(max_examples=80, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
)
def test_uniform_always_valid_profile(level, seed):
    noisy = UniformNoise(level).perturb(PROFILE, random.Random(seed))
    assert noisy.num_resources == PROFILE.num_resources
    assert any(d > 0 for d in noisy.durations)
