"""Tests for usage-timeline reduction (section 4.2)."""

import pytest

from repro.jobs.stage import StageProfile
from repro.profiler.timeline import UsageTimeline, synthesize_timeline


class TestUsageTimeline:
    def test_validation(self):
        with pytest.raises(ValueError):
            UsageTimeline(sample_interval=0.0, samples=((1.0,),))
        with pytest.raises(ValueError):
            UsageTimeline(sample_interval=0.1, samples=())
        with pytest.raises(ValueError):
            UsageTimeline(sample_interval=0.1, samples=((1.0, 0.0), (1.0,)))

    def test_duration(self):
        timeline = UsageTimeline(0.5, ((1.0, 0.0), (0.0, 1.0), (1.0, 0.0)))
        assert timeline.duration == pytest.approx(1.5)
        assert timeline.num_resources == 2

    def test_reduction_assigns_argmax_resource(self):
        timeline = UsageTimeline(
            1.0,
            (
                (0.9, 0.1, 0.0, 0.0),
                (0.9, 0.2, 0.0, 0.0),
                (0.1, 0.0, 0.95, 0.0),
            ),
        )
        profile = timeline.to_stage_profile()
        assert profile.durations == (2.0, 0.0, 1.0, 0.0)

    def test_threshold_filters_weak_signal(self):
        # Second sample has everything near zero (idle gap).
        timeline = UsageTimeline(
            1.0,
            (
                (1.0, 0.0, 0.0, 0.0),
                (0.05, 0.04, 0.03, 0.0),
                (0.0, 0.0, 1.0, 0.0),
            ),
        )
        profile = timeline.to_stage_profile(threshold=0.5)
        assert profile.durations == (1.0, 0.0, 1.0, 0.0)

    def test_normalization_to_per_resource_peak(self):
        """Section 4.2: usage is normalized to each resource's own peak,
        so a 'weak' absolute signal can still win its time point."""
        timeline = UsageTimeline(
            1.0,
            (
                (0.2, 0.9, 0.0, 0.0),   # CPU peak sample
                (0.2, 0.09, 0.0, 0.0),  # storage relative 1.0 beats CPU 0.1
            ),
        )
        profile = timeline.to_stage_profile(threshold=0.05)
        assert profile.durations[0] == 1.0
        assert profile.durations[1] == 1.0

    def test_threshold_validation(self):
        timeline = UsageTimeline(1.0, ((1.0, 0.0, 0.0, 0.0),))
        with pytest.raises(ValueError):
            timeline.to_stage_profile(threshold=1.0)


class TestSynthesizeRoundTrip:
    @pytest.mark.parametrize("durations", [
        (0.6, 0.18, 0.06, 0.02),
        (0.0, 0.5, 0.3, 0.2),
        (0.25, 0.25, 0.25, 0.25),
    ])
    def test_roundtrip_close_to_truth(self, durations):
        truth = StageProfile(durations)
        timeline = synthesize_timeline(truth, sample_interval=0.002, seed=1)
        recovered = timeline.to_stage_profile(threshold=0.3)
        for expected, measured in zip(truth.durations, recovered.durations):
            assert measured == pytest.approx(expected, abs=0.01)

    def test_reproducible(self):
        truth = StageProfile((0.4, 0.3, 0.2, 0.1))
        a = synthesize_timeline(truth, seed=5)
        b = synthesize_timeline(truth, seed=5)
        assert a.samples == b.samples

    def test_tiny_profile_yields_nonempty_timeline(self):
        truth = StageProfile((0.0001, 0.0, 0.0, 0.0))
        timeline = synthesize_timeline(truth, sample_interval=0.01)
        assert len(timeline.samples) >= 1
