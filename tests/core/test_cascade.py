"""Tests for the Fig. 7 cascading-slowdown model."""

import pytest

from repro.core.cascade import cascade_periods, local_cycle_length
from repro.jobs.stage import StageProfile

# Two-resource style profiles padded to four resources.
GPU1_NET1 = StageProfile((0.0, 0.0, 1.0, 1.0))    # 1 unit GPU, 1 network
GPU2_NET1 = StageProfile((0.0, 0.0, 2.0, 1.0))    # 2 units GPU, 1 network
GPU1 = StageProfile((0.0, 0.0, 1.0, 0.0))


class TestLocalCycle:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            local_cycle_length([])

    def test_single_job(self):
        assert local_cycle_length([("a", GPU1_NET1, 0)]) == pytest.approx(2.0)

    def test_pair(self):
        length = local_cycle_length(
            [("a", GPU1_NET1, 0), ("b", GPU1_NET1, 1)]
        )
        assert length >= 2.0


class TestCascade:
    def test_empty(self):
        assert cascade_periods({}) == {}

    def test_isolated_groups_keep_their_periods(self):
        periods = cascade_periods({
            "g1": [("a", GPU1_NET1, 0)],
            "g2": [("b", GPU2_NET1, 0)],
        })
        assert periods["a"] == pytest.approx(2.0)
        assert periods["b"] == pytest.approx(3.0)

    def test_fig7_cascade(self):
        """Fig. 7: A spans GPUs 1-2; B shares GPU 1 with A; C shares
        GPU 2 with A.  B's heavier cycle on GPU 1 stretches A, and A's
        sync stretches C — a job C never co-located with B is slowed by
        B."""
        slow = StageProfile((0.0, 0.0, 3.0, 1.0))   # B: heavy GPU stage
        periods = cascade_periods({
            "gpu1": [("A", GPU1_NET1, 0), ("B", slow, 1)],
            "gpu2": [("A", GPU1_NET1, 0), ("C", GPU1_NET1, 1)],
        })
        solo_pair = local_cycle_length(
            [("A", GPU1_NET1, 0), ("C", GPU1_NET1, 1)]
        )
        # Everyone in the component paces at GPU 1's slower cycle.
        assert periods["A"] == periods["B"] == periods["C"]
        assert periods["C"] > solo_pair

    def test_bucketed_groups_have_no_cascade(self):
        """Muri's bucketing: both workers of A interleave with both
        workers of D (same group on both GPUs) — the component is one
        group and nothing external can slow it."""
        periods = cascade_periods({
            "gpu1": [("A", GPU1_NET1, 0), ("D", GPU1_NET1, 1)],
            "gpu2": [("A", GPU1_NET1, 0), ("D", GPU1_NET1, 1)],
            "gpu3": [("E", GPU2_NET1, 0)],
        })
        pair_cycle = local_cycle_length(
            [("A", GPU1_NET1, 0), ("D", GPU1_NET1, 1)]
        )
        assert periods["A"] == pytest.approx(pair_cycle)
        assert periods["E"] == pytest.approx(3.0)  # untouched

    def test_chain_propagates_transitively(self):
        """A chain a-b-c-d of pairwise sharing forms one component."""
        slow = StageProfile((0.0, 0.0, 5.0, 0.0))
        periods = cascade_periods({
            "g1": [("a", GPU1, 0), ("b", GPU1, 1)],
            "g2": [("b", GPU1, 0), ("c", GPU1, 1)],
            "g3": [("c", GPU1, 0), ("d", slow, 1)],
        })
        # g3's cycle (5 + 1 GPU units serialized on one resource) paces
        # the whole chain, including job a two hops away.
        assert periods["a"] == periods["d"]
        assert periods["a"] >= 5.0

    def test_solo_job_unaffected_by_other_components(self):
        slow = StageProfile((0.0, 0.0, 9.0, 0.0))
        periods = cascade_periods({
            "g1": [("loner", GPU1, 0)],
            "g2": [("x", slow, 0), ("y", GPU1, 1)],
        })
        assert periods["loner"] == pytest.approx(1.0)
