"""Edge-case coverage across the core APIs."""

import pytest

from repro.core.efficiency import group_speedup, interleaving_efficiency
from repro.core.group import JobGroup
from repro.core.muri import MuriScheduler
from repro.core.ordering import best_ordering, enumerate_offset_assignments
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile


class TestThreeResourceWorlds:
    """The machinery is k-generic, not hard-coded to four resources."""

    def test_three_jobs_three_resources(self):
        profiles = [
            StageProfile((1.0, 0.1, 0.1)),
            StageProfile((0.1, 1.0, 0.1)),
            StageProfile((0.1, 0.1, 1.0)),
        ]
        offsets, period = best_ordering(profiles, num_resources=3)
        assert len(offsets) == 3
        assert period == pytest.approx(1.2)  # 1.0 + 0.1 + 0.1 slots
        assert group_speedup(profiles, num_resources=3) == pytest.approx(
            3 * 1.2 / 1.2
        )

    def test_enumeration_size_k3(self):
        assert len(list(enumerate_offset_assignments(3, num_resources=3))) == 2

    def test_efficiency_k3_bounds(self):
        profiles = [StageProfile((0.5, 0.3, 0.2))] * 2
        gamma = interleaving_efficiency(profiles, num_resources=3)
        assert 0 < gamma <= 1


class TestGroupWithExplicitOffsets:
    def test_speedup_with_explicit_offsets(self):
        a = StageProfile((0.0, 2.0, 1.0, 0.0))
        b = StageProfile((0.0, 1.0, 2.0, 0.0))
        best = group_speedup((a, b))
        forced = group_speedup((a, b), offsets=(0, 2))
        assert forced <= best + 1e-9

    def test_group_with_two_resource_profiles(self):
        jobs = [
            Job(JobSpec(profile=StageProfile((2.0, 1.0)), num_iterations=5)),
            Job(JobSpec(profile=StageProfile((1.0, 2.0)), num_iterations=5)),
        ]
        group = JobGroup(
            jobs=tuple(jobs),
            believed_profiles=tuple(j.profile for j in jobs),
            offsets=(0, 1),
            num_resources=2,
        )
        assert group.believed_period == pytest.approx(3.0)
        assert group.believed_efficiency == pytest.approx(1.0)


class TestMuriDegenerateInputs:
    def test_empty_queue(self):
        plan = MuriScheduler().decide(0.0, [], {}, total_gpus=8)
        assert plan == []

    def test_single_job(self):
        job = Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                          num_iterations=10))
        plan = MuriScheduler().decide(0.0, [job], {}, total_gpus=8)
        assert len(plan) == 1
        assert plan[0].size == 1

    def test_all_jobs_wider_than_cluster(self):
        jobs = [
            Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                        num_gpus=16, num_iterations=10))
            for _ in range(3)
        ]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=8)
        assert plan == []

    def test_zero_iteration_budget_respected(self):
        # Jobs with a single iteration still schedule.
        job = Job(JobSpec(profile=StageProfile((0.1, 0.1, 0.7, 0.1)),
                          num_iterations=1))
        plan = MuriScheduler().decide(0.0, [job], {}, total_gpus=1)
        assert len(plan) == 1


class TestSimulatorMuriBackfillPath:
    def test_completion_backfill_uses_cached_groups(self):
        """With event-driven backfill on, Muri serves completions from
        its cached plan (reason='completion' path, end to end)."""
        from repro.cluster.cluster import Cluster
        from repro.sim.contention import IDEAL_CONTENTION
        from repro.sim.simulator import ClusterSimulator

        cpu = StageProfile((0.1, 0.7, 0.1, 0.1))
        gpu = StageProfile((0.1, 0.1, 0.7, 0.1))
        # Six jobs on one GPU: the first group finishes, freeing the
        # GPU mid-interval; backfill must start cached leftovers.
        specs = [
            JobSpec(profile=(cpu if i % 2 else gpu), num_iterations=50)
            for i in range(6)
        ]
        result = ClusterSimulator(
            MuriScheduler(),
            cluster=Cluster(1, 1),
            scheduling_interval=10_000.0,  # ticks effectively never fire
            backfill_on_completion=True,
            restart_penalty=0.0,
            contention=IDEAL_CONTENTION,
        ).run(specs, "backfill")
        assert result.num_jobs == 6
        # Without backfill they'd wait 10000 s per wave; with it the
        # whole workload drains promptly.
        assert result.makespan < 1000.0


class TestEventKinds:
    def test_fault_kind_exists(self):
        from repro.sim.engine import Event, EventKind

        event = Event(1.0, EventKind.FAULT, payload=7)
        assert event.kind is EventKind.FAULT
        assert event.payload == 7
