"""Sparse-matching behaviour of the grouper at queue scale.

Three contracts from "Decision latency and scaling"
(docs/simulation_model.md):

* below ``sparsify_threshold`` the sparse grouper is *bit-identical*
  to the dense algorithm (the dense fallback guarantee);
* at and above the threshold it stays within 2% of the dense
  grouping's total efficiency;
* the incremental decision cache and the quantized weight cache only
  change latency, never feasibility invariants.
"""

import random

import pytest

from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.models.zoo import DEFAULT_MODELS, get_model

SEEDS = range(20)


def random_jobs(n, seed):
    rng = random.Random(seed)
    return [
        Job(JobSpec(
            profile=get_model(rng.choice(DEFAULT_MODELS)).stage_profile(1),
            num_iterations=rng.randint(100, 5000),
        ))
        for _ in range(n)
    ]


def grouping_plan(result):
    """Order-independent fingerprint: the partition into groups."""
    return sorted(
        tuple(sorted(job.job_id for job in group.jobs))
        for group in result.groups
    )


def run(jobs, capacity, threshold):
    grouper = MultiRoundGrouper(sparsify_threshold=threshold)
    return grouper.group(jobs, capacity=capacity)


class TestDenseFallbackIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_below_threshold_identical(self, seed):
        # 127 single-GPU jobs form one 127-node bucket, below the
        # default threshold of 128: the dense path must run and the
        # result must be exactly the dense grouping.
        jobs = random_jobs(127, seed)
        sparse = run(jobs, capacity=32, threshold=128)
        dense = run(jobs, capacity=32, threshold=None)
        assert grouping_plan(sparse) == grouping_plan(dense)
        assert sparse.total_efficiency == dense.total_efficiency
        assert sparse.total_gpu_demand == dense.total_gpu_demand

    def test_tiny_queue_identical(self):
        jobs = random_jobs(16, 7)
        sparse = run(jobs, capacity=4, threshold=128)
        dense = run(jobs, capacity=4, threshold=None)
        assert grouping_plan(sparse) == grouping_plan(dense)


class TestSparseQuality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_within_two_percent_of_dense_at_128(self, seed):
        jobs = random_jobs(128, seed)
        sparse = run(jobs, capacity=32, threshold=128)
        dense = run(jobs, capacity=32, threshold=None)
        assert dense.total_efficiency > 0
        gap = 1.0 - sparse.total_efficiency / dense.total_efficiency
        assert gap <= 0.02

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sparse_preserves_grouping_invariants(self, seed):
        jobs = random_jobs(128, seed)
        result = run(jobs, capacity=32, threshold=128)
        seen = [job.job_id for group in result.groups for job in group.jobs]
        assert sorted(seen) == sorted(job.job_id for job in jobs)
        assert all(group.size <= 4 for group in result.groups)
        assert result.total_gpu_demand == 32


class TestDecisionCache:
    def test_repeat_group_call_reuses_matchings(self):
        jobs = random_jobs(150, 3)
        grouper = MultiRoundGrouper(sparsify_threshold=128)
        first = grouper.group(jobs, capacity=40)
        # Matching again over the unchanged queue must hit the
        # decision cache (no new weight evaluations) and reproduce the
        # plan exactly.
        evaluations = len(grouper._weight_cache)
        second = grouper.group(jobs, capacity=40)
        assert grouping_plan(first) == grouping_plan(second)
        assert len(grouper._weight_cache) == evaluations

    def test_changed_queue_invalidates_cache(self):
        jobs = random_jobs(150, 3)
        grouper = MultiRoundGrouper(sparsify_threshold=128)
        first = grouper.group(jobs, capacity=40)
        shrunk = grouper.group(jobs[:100], capacity=40)
        seen = [j.job_id for group in shrunk.groups for j in group.jobs]
        assert sorted(seen) == sorted(j.job_id for j in jobs[:100])
        assert grouping_plan(shrunk) != grouping_plan(first)


class TestQuantizedCache:
    def test_quantum_collapses_noisy_profiles(self):
        base = StageProfile((0.40, 0.20, 0.30, 0.10))
        noisy = StageProfile((0.401, 0.199, 0.300, 0.101))
        jobs = [
            Job(JobSpec(profile=p, num_iterations=50))
            for p in (base, noisy, base, noisy)
        ]
        grouper = MultiRoundGrouper(cache_quantum=0.01)
        grouper.group(jobs)
        # All four jobs share one quantized key, so the pairwise weight
        # computations collapse to the distinct key multisets.
        keys = {key for key in grouper._weight_cache}
        assert len(keys) <= 3

    def test_zero_quantum_keeps_exact_keys(self):
        base = StageProfile((0.40, 0.20, 0.30, 0.10))
        noisy = StageProfile((0.401, 0.199, 0.300, 0.101))
        jobs = [
            Job(JobSpec(profile=p, num_iterations=50))
            for p in (base, noisy)
        ]
        grouper = MultiRoundGrouper()
        result = grouper.group(jobs)
        assert len(result.groups) == 1
        key = next(iter(grouper._weight_cache))
        assert base.durations in key and noisy.durations in key

    def test_quantized_grouping_keeps_invariants(self):
        jobs = random_jobs(60, 11)
        result = MultiRoundGrouper(cache_quantum=0.005).group(jobs, capacity=16)
        seen = [job.job_id for group in result.groups for job in group.jobs]
        assert sorted(seen) == sorted(job.job_id for job in jobs)
        assert result.total_gpu_demand == 16
