"""Tests for the multi-round grouping algorithm (Algorithm 1)."""

import pytest

from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile

STORAGE = StageProfile((0.7, 0.1, 0.1, 0.1))
CPU = StageProfile((0.1, 0.7, 0.1, 0.1))
GPU = StageProfile((0.1, 0.1, 0.7, 0.1))
NETWORK = StageProfile((0.1, 0.1, 0.1, 0.7))


def make_job(profile, gpus=1):
    return Job(JobSpec(profile=profile, num_gpus=gpus, num_iterations=50))


class TestConstruction:
    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            MultiRoundGrouper(max_group_size=0)

    def test_group_size_beyond_resources(self):
        with pytest.raises(ValueError):
            MultiRoundGrouper(max_group_size=5)

    def test_unknown_matcher(self):
        with pytest.raises(ValueError):
            MultiRoundGrouper(matcher="magic")

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            MultiRoundGrouper(ordering="random")


class TestBasicGrouping:
    def test_four_complementary_jobs_form_one_quad(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        result = MultiRoundGrouper().group(jobs)
        assert len(result.groups) == 1
        assert result.groups[0].size == 4
        assert result.rounds == 2
        assert result.total_gpu_demand == 1

    def test_fig4_matching_prefers_complementary_pairs(self):
        """Plan 1 of Fig. 4: (A, B) and (C, D), not (A, C) and (B, D)."""
        a, b = make_job(CPU), make_job(GPU)
        c, d = make_job(CPU), make_job(GPU)
        result = MultiRoundGrouper(max_group_size=2).group([a, c, b, d])
        assert len(result.groups) == 2
        for group in result.groups:
            bottlenecks = {job.profile.bottleneck for job in group.jobs}
            assert len(bottlenecks) == 2  # one CPU-heavy with one GPU-heavy

    def test_max_group_size_two(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        result = MultiRoundGrouper(max_group_size=2).group(jobs)
        assert all(group.size <= 2 for group in result.groups)
        assert len(result.groups) == 2

    def test_max_group_size_three(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK, STORAGE, CPU)]
        result = MultiRoundGrouper(max_group_size=3).group(jobs)
        assert all(group.size <= 3 for group in result.groups)

    def test_max_group_size_one_means_no_grouping(self):
        jobs = [make_job(p) for p in (STORAGE, CPU)]
        result = MultiRoundGrouper(max_group_size=1).group(jobs)
        assert all(group.size == 1 for group in result.groups)

    def test_single_job(self):
        result = MultiRoundGrouper().group([make_job(GPU)])
        assert len(result.groups) == 1
        assert result.groups[0].size == 1

    def test_every_job_appears_exactly_once(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK, STORAGE, GPU, CPU)]
        result = MultiRoundGrouper().group(jobs)
        ids = [job.job_id for group in result.groups for job in group.jobs]
        assert sorted(ids) == sorted(job.job_id for job in jobs)

    def test_profile_count_mismatch(self):
        with pytest.raises(ValueError):
            MultiRoundGrouper().group([make_job(GPU)], believed_profiles=[])


class TestBucketing:
    def test_only_same_gpu_jobs_grouped(self):
        jobs = [
            make_job(STORAGE, gpus=1),
            make_job(GPU, gpus=2),
            make_job(CPU, gpus=1),
            make_job(NETWORK, gpus=2),
        ]
        result = MultiRoundGrouper().group(jobs)
        for group in result.groups:
            assert len({job.num_gpus for job in group.jobs}) == 1

    def test_multi_gpu_jobs_can_group_together(self):
        jobs = [make_job(STORAGE, gpus=4), make_job(GPU, gpus=4)]
        result = MultiRoundGrouper().group(jobs)
        assert len(result.groups) == 1
        assert result.groups[0].num_gpus == 4


class TestCapacityAwareness:
    def test_no_grouping_when_everything_fits(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        result = MultiRoundGrouper().group(jobs, capacity=4)
        assert all(group.size == 1 for group in result.groups)
        assert result.total_gpu_demand == 4

    def test_groups_just_enough(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        result = MultiRoundGrouper().group(jobs, capacity=3)
        sizes = sorted(group.size for group in result.groups)
        assert sizes == [1, 1, 2]
        assert result.total_gpu_demand == 3

    def test_groups_everything_under_pressure(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        result = MultiRoundGrouper().group(jobs, capacity=1)
        assert len(result.groups) == 1
        assert result.groups[0].size == 4

    def test_split_dissolves_unneeded_groups(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        # Seed a pre-merged pair, but give plenty of capacity: the seed
        # should be dissolved back into singletons.
        preformed = [(jobs[0].job_id, jobs[1].job_id)]
        result = MultiRoundGrouper().group(jobs, capacity=10, preformed=preformed)
        assert all(group.size == 1 for group in result.groups)


class TestApplyMerges:
    """The tombstone-based merge application must reproduce the old
    list-surgery semantics: the merged node takes the left partner's
    position, the right partner disappears, everything else keeps its
    relative order."""

    @staticmethod
    def _reference_apply(buckets, candidates, demand, capacity):
        # Object-identity surgery, as the per-merge implementation did:
        # resolve indices against a snapshot, then index/replace/remove.
        snapshot = {gpus: list(nodes) for gpus, nodes in buckets.items()}
        for _weight, left, gpus, right in candidates:
            if capacity is not None and demand <= capacity:
                break
            left_node = snapshot[gpus][left]
            right_node = snapshot[gpus][right]
            nodes = buckets[gpus]
            nodes[nodes.index(left_node)] = left_node.merged_with(right_node)
            nodes.remove(right_node)
            demand -= gpus
        return demand

    def _bucket_fixture(self, capacity):
        jobs = [
            make_job(p)
            for p in (STORAGE, CPU, GPU, NETWORK, STORAGE, CPU, GPU, NETWORK)
        ]
        grouper = MultiRoundGrouper()
        buckets, order = grouper._build_nodes(jobs, [j.profile for j in jobs], None)
        candidates = grouper._candidate_merges(buckets, order)
        return grouper, buckets, candidates

    @staticmethod
    def _plan(buckets):
        return {
            gpus: [[job.job_id for job in node.jobs] for node in nodes]
            for gpus, nodes in buckets.items()
        }

    @pytest.mark.parametrize("capacity", [None, 6, 7])
    def test_matches_list_surgery_semantics(self, capacity):
        grouper, buckets, candidates = self._bucket_fixture(capacity)
        expected = {gpus: list(nodes) for gpus, nodes in buckets.items()}
        expected_demand = self._reference_apply(
            expected, candidates, demand=8, capacity=capacity
        )
        demand = grouper._apply_merges(buckets, candidates, 8, capacity)
        assert demand == expected_demand
        assert self._plan(buckets) == self._plan(expected)

    def test_merged_node_keeps_left_position(self):
        grouper, buckets, candidates = self._bucket_fixture(None)
        first_left = candidates[0][1]
        anchor = buckets[1][first_left].jobs[0].job_id
        grouper._apply_merges(buckets, candidates, 8, None)
        # The best merge's left partner still heads its merged node, at
        # a position no later than before.
        positions = [node.jobs[0].job_id for node in buckets[1]]
        assert anchor in positions
        assert positions.index(anchor) <= first_left

    def test_capacity_stops_merging_early(self):
        grouper, buckets, candidates = self._bucket_fixture(7)
        demand = grouper._apply_merges(buckets, candidates, 8, 7)
        assert demand == 7
        assert sum(len(nodes) for nodes in buckets.values()) == 7


class TestSeeds:
    def test_preformed_members_stay_together(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        preformed = [(jobs[0].job_id, jobs[2].job_id)]
        result = MultiRoundGrouper().group(jobs, capacity=2, preformed=preformed)
        # A seed is never torn apart under pressure (it may be merged
        # further): both members land in the same group.
        home = {
            job.job_id: index
            for index, group in enumerate(result.groups)
            for job in group.jobs
        }
        assert home[preformed[0][0]] == home[preformed[0][1]]

    def test_preformed_with_missing_member_ignored(self):
        jobs = [make_job(p) for p in (STORAGE, CPU)]
        preformed = [(jobs[0].job_id, 999_999)]
        result = MultiRoundGrouper().group(jobs, capacity=1, preformed=preformed)
        ids = sorted(j.job_id for g in result.groups for j in g.jobs)
        assert ids == sorted(j.job_id for j in jobs)

    def test_preformed_with_mixed_gpus_ignored(self):
        a, b = make_job(STORAGE, gpus=1), make_job(GPU, gpus=2)
        result = MultiRoundGrouper().group(
            [a, b], capacity=1, preformed=[(a.job_id, b.job_id)]
        )
        for group in result.groups:
            assert len({j.num_gpus for j in group.jobs}) == 1

    def test_preformed_too_large_ignored(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU)]
        result = MultiRoundGrouper(max_group_size=2).group(
            jobs, capacity=1, preformed=[tuple(j.job_id for j in jobs)]
        )
        assert all(group.size <= 2 for group in result.groups)


class TestMatchers:
    def test_blossom_beats_greedy_weight(self):
        # Construct a case where greedy (priority-order) pairing is
        # suboptimal: priority order pairs same-bottleneck jobs.
        jobs = [make_job(CPU), make_job(CPU), make_job(GPU), make_job(GPU)]
        blossom = MultiRoundGrouper(max_group_size=2, matcher="blossom").group(jobs)
        greedy = MultiRoundGrouper(max_group_size=2, matcher="greedy").group(jobs)
        assert blossom.total_efficiency >= greedy.total_efficiency

    def test_greedy_pairs_in_priority_order(self):
        jobs = [make_job(CPU), make_job(CPU), make_job(GPU), make_job(GPU)]
        result = MultiRoundGrouper(max_group_size=2, matcher="greedy").group(jobs)
        member_sets = [frozenset(j.job_id for j in g.jobs) for g in result.groups]
        assert frozenset((jobs[0].job_id, jobs[1].job_id)) in member_sets

    def test_exact_matches_blossom_for_pairs(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        exact = MultiRoundGrouper(max_group_size=2, matcher="exact").group(jobs)
        blossom = MultiRoundGrouper(max_group_size=2, matcher="blossom").group(jobs)
        assert exact.total_efficiency == pytest.approx(
            blossom.total_efficiency, rel=1e-6
        )

    def test_exact_refuses_large_inputs(self):
        jobs = [make_job(GPU) for _ in range(13)]
        with pytest.raises(ValueError):
            MultiRoundGrouper(matcher="exact").group(jobs)

    def test_exact_never_below_blossom(self):
        jobs = [
            make_job(p)
            for p in (STORAGE, STORAGE, CPU, GPU, NETWORK, GPU, CPU, NETWORK)
        ]
        exact = MultiRoundGrouper(matcher="exact").group(jobs)
        blossom = MultiRoundGrouper(matcher="blossom").group(jobs)
        assert exact.total_efficiency >= blossom.total_efficiency - 1e-9


class TestOrderingPolicy:
    def test_worst_ordering_groups_like_best(self):
        """Fig. 11's variant groups identically but executes the worst
        stage ordering, giving a longer believed period."""
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        best = MultiRoundGrouper(ordering="best").group(jobs)
        worst = MultiRoundGrouper(ordering="worst").group(jobs)
        assert len(best.groups) == len(worst.groups) == 1
        assert worst.groups[0].believed_period >= best.groups[0].believed_period


class TestMinEfficiency:
    def test_threshold_blocks_bad_merges(self):
        # Two identical GPU-only jobs interleave at gamma = 0.25.
        jobs = [make_job(GPU), make_job(GPU)]
        result = MultiRoundGrouper(min_efficiency=0.5).group(jobs, capacity=1)
        assert all(group.size == 1 for group in result.groups)

    def test_threshold_allows_good_merges(self):
        jobs = [make_job(CPU), make_job(GPU)]
        result = MultiRoundGrouper(min_efficiency=0.3).group(jobs, capacity=1)
        assert len(result.groups) == 1
        assert result.groups[0].size == 2
