"""Metamorphic properties of the efficiency and ordering models.

These are relations the paper's equations satisfy for *every* input,
so they hold regardless of the vectorized kernels underneath:

* gamma is symmetric in the group members (Eq. 4 sums over jobs, and
  the ordering search tries every offset assignment);
* scaling every stage duration by one constant scales Eq. 3's period
  by the same constant and leaves gamma unchanged;
* padding a group with a job that does (almost) nothing can never
  raise the group's interleaving efficiency.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.efficiency import interleaving_efficiency
from repro.core.ordering import best_ordering, group_iteration_time
from repro.jobs.stage import StageProfile

K = 4

# Either exactly zero or comfortably normal: subnormal durations would
# underflow to an all-zero profile under uniform down-scaling.
durations = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=50.0,
              allow_nan=False, allow_infinity=False),
)
row_strategy = st.tuples(durations, durations, durations, durations).filter(
    lambda row: any(row)
)


def profiles_strategy(max_size=K):
    return st.lists(row_strategy, min_size=1, max_size=max_size).map(
        lambda rows: [StageProfile(row) for row in rows]
    )


def approx(value):
    return pytest.approx(value, rel=1e-9, abs=1e-9)


class TestPermutationInvariance:
    @given(profiles=profiles_strategy(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_gamma_invariant_under_member_order(self, profiles, seed):
        shuffled = list(profiles)
        random.Random(seed).shuffle(shuffled)
        original = interleaving_efficiency(profiles)
        assert interleaving_efficiency(shuffled) == approx(original)

    @given(profiles=profiles_strategy(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_best_period_invariant_under_member_order(self, profiles, seed):
        shuffled = list(profiles)
        random.Random(seed).shuffle(shuffled)
        _, period = best_ordering(profiles, K)
        _, shuffled_period = best_ordering(shuffled, K)
        assert shuffled_period == approx(period)


class TestUniformScaling:
    @given(
        profiles=profiles_strategy(),
        scale=st.sampled_from([0.25, 0.5, 2.0, 3.0, 10.0]),
    )
    @settings(max_examples=60)
    def test_period_scales_linearly(self, profiles, scale):
        scaled = [
            StageProfile(tuple(d * scale for d in p.durations))
            for p in profiles
        ]
        offsets, period = best_ordering(profiles, K)
        assert group_iteration_time(scaled, offsets, K) == approx(
            period * scale
        )
        _, best_scaled = best_ordering(scaled, K)
        assert best_scaled == approx(period * scale)

    @given(
        profiles=profiles_strategy(),
        scale=st.sampled_from([0.25, 0.5, 2.0, 3.0, 10.0]),
    )
    @settings(max_examples=40)
    def test_gamma_invariant_under_scaling(self, profiles, scale):
        scaled = [
            StageProfile(tuple(d * scale for d in p.durations))
            for p in profiles
        ]
        assert interleaving_efficiency(scaled) == approx(
            interleaving_efficiency(profiles)
        )


class TestPadding:
    @given(profiles=profiles_strategy(max_size=K - 1))
    @settings(max_examples=60)
    def test_near_idle_job_never_raises_gamma(self, profiles):
        # A StageProfile must use at least one resource, so the padding
        # job runs for one epsilon-long stage — as close to "does
        # nothing" as the model admits.
        epsilon_job = StageProfile((1e-9, 0.0, 0.0, 0.0))
        padded = list(profiles) + [epsilon_job]
        gamma = interleaving_efficiency(profiles)
        padded_gamma = interleaving_efficiency(padded)
        assert padded_gamma <= gamma + 1e-6
