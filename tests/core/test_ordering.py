"""Tests for stage ordering and the group iteration period (Eq. 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import (
    best_ordering,
    best_period_for_rows,
    enumerate_offset_assignments,
    extreme_period_for_rows,
    group_iteration_time,
    identity_ordering,
    slot_durations,
    worst_ordering,
)
from repro.jobs.stage import StageProfile

# Fig. 6 profiles: A spends 2 units on CPU (resource 1), 1 elsewhere;
# B spends 2 units on GPU (resource 2), 1 elsewhere.
FIG6_A = StageProfile((1.0, 2.0, 1.0, 1.0))
FIG6_B = StageProfile((1.0, 1.0, 2.0, 1.0))


class TestSlotDurations:
    def test_single_job_slots_are_its_stages(self):
        profile = StageProfile((0.1, 0.2, 0.3, 0.4))
        assert slot_durations([profile], (0,)) == [0.1, 0.2, 0.3, 0.4]

    def test_offset_rotates_stages(self):
        profile = StageProfile((0.1, 0.2, 0.3, 0.4))
        assert slot_durations([profile], (1,)) == [0.2, 0.3, 0.4, 0.1]

    def test_two_jobs_max_per_slot(self):
        a = StageProfile((2.0, 1.0))
        b = StageProfile((1.0, 2.0))
        # Offsets (0, 1): slot0 = max(a[0], b[1]) = 2; slot1 = max(a[1], b[0]) = 1.
        assert slot_durations([a, b], (0, 1), num_resources=2) == [2.0, 1.0]

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(ValueError):
            slot_durations([FIG6_A, FIG6_B], (0, 0))

    def test_rejects_wrong_offset_count(self):
        with pytest.raises(ValueError):
            slot_durations([FIG6_A], (0, 1))

    def test_rejects_short_profile(self):
        with pytest.raises(ValueError):
            slot_durations([StageProfile((1.0, 1.0))], (0,), num_resources=4)


class TestGroupIterationTime:
    def test_single_job_is_stage_sum(self):
        profile = StageProfile((0.25, 0.25, 0.4, 0.1))
        assert group_iteration_time([profile], (0,)) == pytest.approx(1.0)

    def test_fig6_best_ordering_period(self):
        """Fig. 6(a): perfect overlap gives T = 5 time units."""
        offsets, period = best_ordering((FIG6_A, FIG6_B))
        assert period == pytest.approx(5.0)

    def test_fig6_worst_ordering_period(self):
        """Fig. 6(b): the bad ordering costs an extra unit, T = 6."""
        _offsets, period = worst_ordering((FIG6_A, FIG6_B))
        assert period == pytest.approx(6.0)

    def test_identity_matches_eq3_literally(self):
        offsets, period = identity_ordering((FIG6_A, FIG6_B))
        assert offsets == (0, 1)
        expected = sum(
            max(FIG6_A.durations[(0 + s) % 4], FIG6_B.durations[(1 + s) % 4])
            for s in range(4)
        )
        assert period == pytest.approx(expected)

    def test_figure1_ideal_four_way_overlap(self):
        """Fig. 1(b): four single-stage jobs overlap perfectly (T = d)."""
        jobs = [
            StageProfile(tuple(1.0 if i == r else 0.0 for i in range(4)))
            for r in range(4)
        ]
        _offsets, period = best_ordering(jobs)
        assert period == pytest.approx(1.0)

    def test_four_identical_single_stage_jobs_serialize(self):
        """Four storage-only jobs cannot overlap: T = 4d."""
        jobs = [StageProfile((1.0, 0.0, 0.0, 0.0))] * 4
        _offsets, period = best_ordering(jobs)
        assert period == pytest.approx(4.0)


class TestEnumeration:
    def test_single_job(self):
        assert list(enumerate_offset_assignments(1)) == [(0,)]

    def test_pair_count(self):
        # First offset pinned at 0; 3 choices remain.
        assert len(list(enumerate_offset_assignments(2))) == 3

    def test_quad_count(self):
        assert len(list(enumerate_offset_assignments(4))) == math.factorial(3)

    def test_offsets_distinct(self):
        for offsets in enumerate_offset_assignments(4):
            assert len(set(offsets)) == 4

    def test_first_offset_pinned(self):
        for offsets in enumerate_offset_assignments(3):
            assert offsets[0] == 0

    def test_too_many_jobs(self):
        with pytest.raises(ValueError):
            list(enumerate_offset_assignments(5, num_resources=4))

    def test_zero_jobs(self):
        with pytest.raises(ValueError):
            list(enumerate_offset_assignments(0))


@st.composite
def profile_groups(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    profiles = []
    for _ in range(size):
        durations = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0),
                min_size=4,
                max_size=4,
            ).filter(lambda d: sum(d) > 0)
        )
        profiles.append(StageProfile(tuple(durations)))
    return profiles


@settings(max_examples=150, deadline=None)
@given(profile_groups())
def test_best_le_identity_le_worst(profiles):
    _o1, best = best_ordering(profiles)
    _o2, ident = identity_ordering(profiles)
    _o3, worst = worst_ordering(profiles)
    assert best <= ident + 1e-9
    assert ident <= worst + 1e-9


@settings(max_examples=150, deadline=None)
@given(profile_groups())
def test_period_bounds(profiles):
    """max solo iteration <= T_best <= sum of solo iterations."""
    _offsets, period = best_ordering(profiles)
    solos = [p.iteration_time for p in profiles]
    assert period >= max(solos) - 1e-9
    assert period <= sum(solos) + 1e-9


@settings(max_examples=100, deadline=None)
@given(profile_groups())
def test_period_at_least_busy_time_per_resource(profiles):
    """T >= total demand on every resource (barriers forbid overlap)."""
    offsets, period = best_ordering(profiles)
    for resource in range(4):
        busy = sum(p.durations[resource] for p in profiles)
        assert period >= busy - 1e-9


def _scalar_extreme(profiles, pick_worst=False):
    """Reference implementation: the generator-based enumeration the
    vectorized kernel replaced."""
    extreme = None
    for offsets in enumerate_offset_assignments(len(profiles), 4):
        period = group_iteration_time(profiles, offsets, 4)
        better = (
            extreme is None
            or (period > extreme[1] if pick_worst else period < extreme[1])
        )
        if better:
            extreme = (offsets, period)
    return extreme


@settings(max_examples=150, deadline=None)
@given(profile_groups())
def test_vectorized_kernel_matches_scalar_enumeration(profiles):
    """The batch kernel is bit-identical to the scalar scan: same
    offsets (first-improvement tie-breaking) and exactly equal period,
    for both best and worst."""
    rows = tuple(p.durations for p in profiles)
    for pick_worst in (False, True):
        offsets, period = extreme_period_for_rows(rows, 4, pick_worst)
        ref_offsets, ref_period = _scalar_extreme(profiles, pick_worst)
        assert offsets == ref_offsets
        assert period == ref_period


def test_best_period_for_rows_matches_best_ordering():
    profiles = (
        StageProfile((1.0, 2.0, 1.0, 1.0)),
        StageProfile((1.0, 1.0, 2.0, 1.0)),
        StageProfile((2.0, 1.0, 1.0, 1.0)),
    )
    rows = tuple(p.durations for p in profiles)
    assert best_period_for_rows(rows) == best_ordering(profiles)


def test_rows_kernel_rejects_oversized_groups():
    rows = ((1.0, 1.0, 1.0, 1.0),) * 5
    with pytest.raises(ValueError):
        best_period_for_rows(rows)
