"""Parallel grouping must be bit-identical to the serial path.

The process-pool dispatch in ``MultiRoundGrouper`` only changes *who*
runs each bucket's matching, never *what* is computed: payloads carry
the full decision-relevant state and results merge in ``bucket_order``.
These seeded property tests pin that equivalence with the
``differential.parallel`` oracle across worker counts, queue sizes
straddling the sparsification threshold, and both the single-bucket
(no dispatch) and multi-bucket (dispatch active) regimes.
"""

import random

import pytest

from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.verify.differential import compare_parallel_serial, group_sets


def _mixed_jobs(rng, count, gpu_choices=(1, 2, 4, 8)):
    """A seeded mixed-GPU queue: several buckets, random durations."""
    jobs = []
    for _ in range(count):
        row = tuple(round(rng.uniform(0.05, 5.0), 3) for _ in range(4))
        jobs.append(
            Job(JobSpec(
                profile=StageProfile(row),
                num_gpus=rng.choice(list(gpu_choices)),
                num_iterations=rng.randint(1, 500),
            ))
        )
    return jobs


# Ten seeds; the (size, workers) pairing cycles so that every queue
# size in {127, 128, 129} (straddling the default sparsify threshold
# of 128) meets every pool width in {2, 4}.
CASES = [
    (seed, (127, 128, 129)[seed % 3], (2, 4)[seed % 2])
    for seed in range(10)
]


@pytest.mark.parametrize("seed,size,workers", CASES)
def test_parallel_matches_serial_mixed(seed, size, workers):
    """Mixed-GPU queues with a low sparsify threshold: dispatch active."""
    rng = random.Random(seed)
    jobs = _mixed_jobs(rng, size)
    # A ~size/4 bucket comfortably exceeds the dispatch floor.
    assert size // 4 >= MultiRoundGrouper.PARALLEL_MIN_NODES
    serial, parallel = compare_parallel_serial(
        jobs, capacity=None, workers=workers, sparsify_threshold=64
    )
    assert group_sets(serial) == group_sets(parallel)
    assert serial.total_efficiency == parallel.total_efficiency


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_parallel_matches_serial_single_bucket(seed):
    """Single-GPU-only queues: one bucket, the pool is bypassed."""
    rng = random.Random(100 + seed)
    jobs = _mixed_jobs(rng, 128 + seed - 1, gpu_choices=(1,))
    serial, parallel = compare_parallel_serial(jobs, capacity=None, workers=2)
    assert group_sets(serial) == group_sets(parallel)


def test_parallel_matches_serial_with_capacity():
    """Capacity-limited dequeue must survive the round trip too."""
    rng = random.Random(42)
    jobs = _mixed_jobs(rng, 128)
    serial, parallel = compare_parallel_serial(
        jobs, capacity=64, workers=2, sparsify_threshold=64
    )
    assert group_sets(serial) == group_sets(parallel)
    assert serial.total_gpu_demand == parallel.total_gpu_demand
