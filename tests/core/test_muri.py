"""Tests for the MuriScheduler's decide() logic."""

import pytest

from repro.core.muri import MuriScheduler
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.profiler.noise import UniformNoise
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.base import group_key

STORAGE = StageProfile((0.7, 0.1, 0.1, 0.1))
CPU = StageProfile((0.1, 0.7, 0.1, 0.1))
GPU = StageProfile((0.1, 0.1, 0.7, 0.1))
NETWORK = StageProfile((0.1, 0.1, 0.1, 0.7))


def make_job(profile=GPU, gpus=1, iters=100, submit=0.0):
    return Job(JobSpec(profile=profile, num_gpus=gpus, num_iterations=iters,
                       submit_time=submit))


class TestNames:
    def test_muri_s(self):
        assert MuriScheduler(policy="srsf").name == "Muri-S"
        assert MuriScheduler(policy="srsf").duration_aware

    def test_muri_l(self):
        assert MuriScheduler(policy="las2d").name == "Muri-L"
        assert not MuriScheduler(policy="las2d").duration_aware

    def test_variant_names(self):
        assert "greedy" in MuriScheduler(matcher="greedy").name
        assert "worst" in MuriScheduler(ordering="worst").name
        assert "[2-job]" in MuriScheduler(max_group_size=2).name


class TestDecide:
    def test_respects_capacity(self):
        jobs = [make_job(gpus=2) for _ in range(20)]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=8)
        assert sum(group.num_gpus for group in plan) <= 8

    def test_light_load_runs_solo(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=8)
        assert all(group.size == 1 for group in plan)
        assert len(plan) == 4

    def test_congestion_triggers_grouping(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK) * 2]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=2)
        assert any(group.size > 1 for group in plan)
        assert sum(group.num_gpus for group in plan) <= 2

    def test_groups_are_gpu_homogeneous(self):
        jobs = [make_job(p, gpus=g) for p in (STORAGE, CPU, GPU, NETWORK)
                for g in (1, 2)]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=2)
        for group in plan:
            assert len({job.num_gpus for job in group.jobs}) == 1

    def test_priority_order_respected(self):
        short = make_job(GPU, iters=1)
        long_ = make_job(GPU, iters=10_000)
        plan = MuriScheduler(policy="srsf").decide(
            0.0, [long_, short], {}, total_gpus=1
        )
        # Capacity one GPU: if anything runs solo it must include the
        # short job first.
        scheduled = [job.job_id for group in plan for job in group.jobs]
        assert short.job_id in scheduled

    def test_no_job_twice(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK) * 3]
        plan = MuriScheduler().decide(0.0, jobs, {}, total_gpus=3)
        ids = [job.job_id for group in plan for job in group.jobs]
        assert len(ids) == len(set(ids))

    def test_running_groups_preserved_when_valid(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        scheduler = MuriScheduler()
        first = scheduler.decide(0.0, jobs, {}, total_gpus=1)
        running = {group_key(g): g for g in first}
        second = scheduler.decide(
            10.0, jobs, running, total_gpus=1
        )
        assert {group_key(g) for g in second} == set(running)


class TestBackfillCache:
    def test_completion_keeps_running_members_together(self):
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK) * 2]
        scheduler = MuriScheduler()
        plan = scheduler.decide(0.0, jobs, {}, total_gpus=1)
        assert len(plan) >= 1
        running = {group_key(plan[0]): plan[0]}
        # Pretend other jobs are pending and a slot freed up.
        backfill = scheduler.decide(
            5.0, jobs, running, total_gpus=2, reason="completion"
        )
        # The running group's member set survives the backfill (same
        # identity to the simulator), and capacity is respected.
        keys = {group_key(g) for g in backfill}
        assert group_key(plan[0]) in keys
        assert sum(g.num_gpus for g in backfill) <= 2
        # The freed slot was actually used for pending jobs.
        assert len(backfill) == 2

    def test_completion_without_cache_regroups(self):
        jobs = [make_job(GPU)]
        scheduler = MuriScheduler()
        plan = scheduler.decide(0.0, jobs, {}, total_gpus=4, reason="completion")
        assert len(plan) == 1


class TestProfilerIntegration:
    def test_uses_profiler_measurements(self):
        profiler = ResourceProfiler(noise=UniformNoise(0.5), num_dry_runs=1,
                                    seed=3, cache_by_model=False)
        scheduler = MuriScheduler(profiler=profiler)
        jobs = [make_job(p) for p in (STORAGE, CPU, GPU, NETWORK)]
        scheduler.decide(0.0, jobs, {}, total_gpus=1)
        assert profiler.stats.dry_runs > 0

    def test_believed_profiles_come_from_profiler(self):
        profiler = ResourceProfiler(noise=UniformNoise(0.9), num_dry_runs=1,
                                    seed=1, cache_by_model=False)
        scheduler = MuriScheduler(profiler=profiler)
        jobs = [make_job(GPU), make_job(CPU)]
        plan = scheduler.decide(0.0, jobs, {}, total_gpus=1)
        group = plan[0]
        truths = {job.profile.durations for job in group.jobs}
        believed = set(p.durations for p in group.believed_profiles)
        assert not (believed & truths)


class TestPlanMemo:
    """The whole-plan memo on the event_regroup warm path."""

    def _jobs(self):
        return [make_job(p, gpus=g) for p in (STORAGE, CPU, GPU, NETWORK)
                for g in (1, 2)]

    def test_identical_state_skips_grouping(self):
        jobs = self._jobs()
        scheduler = MuriScheduler(event_regroup=True)
        first = scheduler.decide(0.0, jobs, {}, total_gpus=4,
                                 reason="completion")

        def boom(*args, **kwargs):
            raise AssertionError("grouper.group called on a memo hit")

        scheduler.grouper.group = boom
        second = scheduler.decide(1.0, jobs, {}, total_gpus=4,
                                  reason="completion")
        assert [group_key(g) for g in first] == [group_key(g) for g in second]

    def test_queue_change_invalidates(self):
        jobs = self._jobs()
        scheduler = MuriScheduler(event_regroup=True)
        scheduler.decide(0.0, jobs, {}, total_gpus=4, reason="completion")

        called = []
        inner = scheduler.grouper.group

        def spy(*args, **kwargs):
            called.append(True)
            return inner(*args, **kwargs)

        scheduler.grouper.group = spy
        scheduler.decide(1.0, jobs[1:], {}, total_gpus=4, reason="completion")
        assert called

    def test_reset_caches_clears_memo(self):
        jobs = self._jobs()
        scheduler = MuriScheduler(event_regroup=True)
        scheduler.decide(0.0, jobs, {}, total_gpus=4, reason="completion")
        scheduler.reset_caches()

        called = []
        inner = scheduler.grouper.group

        def spy(*args, **kwargs):
            called.append(True)
            return inner(*args, **kwargs)

        scheduler.grouper.group = spy
        scheduler.decide(1.0, jobs, {}, total_gpus=4, reason="completion")
        assert called

    def test_memo_gated_on_event_regroup(self):
        jobs = self._jobs()
        scheduler = MuriScheduler()
        scheduler.decide(0.0, jobs, {}, total_gpus=4, reason="completion")

        called = []
        inner = scheduler.grouper.group

        def spy(*args, **kwargs):
            called.append(True)
            return inner(*args, **kwargs)

        scheduler.grouper.group = spy
        scheduler.decide(1.0, jobs, {}, total_gpus=4, reason="completion")
        assert called
