"""Tests for JobGroup."""

import pytest

from repro.core.group import JobGroup
from repro.core.ordering import best_ordering
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile

CPU_HEAVY = StageProfile((0.1, 0.7, 0.1, 0.1))
GPU_HEAVY = StageProfile((0.1, 0.1, 0.7, 0.1))


def make_job(profile=CPU_HEAVY, gpus=1, iters=100):
    return Job(JobSpec(profile=profile, num_gpus=gpus, num_iterations=iters))


def make_pair():
    a, b = make_job(CPU_HEAVY), make_job(GPU_HEAVY)
    profiles = (a.profile, b.profile)
    offsets, _ = best_ordering(profiles)
    return JobGroup(jobs=(a, b), believed_profiles=profiles, offsets=offsets)


class TestValidation:
    def test_empty_group(self):
        with pytest.raises(ValueError):
            JobGroup(jobs=(), believed_profiles=(), offsets=())

    def test_profile_count_mismatch(self):
        job = make_job()
        with pytest.raises(ValueError):
            JobGroup(jobs=(job,), believed_profiles=(), offsets=(0,))

    def test_offset_count_mismatch(self):
        job = make_job()
        with pytest.raises(ValueError):
            JobGroup(jobs=(job,), believed_profiles=(job.profile,), offsets=(0, 1))

    def test_mixed_gpu_counts_rejected(self):
        a, b = make_job(gpus=1), make_job(gpus=2)
        with pytest.raises(ValueError):
            JobGroup(
                jobs=(a, b),
                believed_profiles=(a.profile, b.profile),
                offsets=(0, 1),
            )


class TestSolo:
    def test_solo_defaults(self):
        job = make_job()
        group = JobGroup.solo(job)
        assert group.size == 1
        assert group.num_gpus == 1
        assert group.offsets == (0,)
        assert group.believed_profiles == (job.profile,)

    def test_solo_with_believed_profile(self):
        job = make_job()
        noisy = StageProfile((0.2, 0.6, 0.1, 0.1))
        group = JobGroup.solo(job, believed_profile=noisy)
        assert group.believed_profiles == (noisy,)
        # Actual execution still uses the truth.
        assert group.actual_period() == pytest.approx(job.profile.iteration_time)


class TestMetrics:
    def test_believed_equals_actual_without_noise(self):
        group = make_pair()
        assert group.believed_period == pytest.approx(group.actual_period())
        assert group.believed_efficiency == pytest.approx(group.actual_efficiency())

    def test_actual_period_with_contention(self):
        group = make_pair()
        assert group.actual_period(1.1) == pytest.approx(group.actual_period() * 1.1)

    def test_believed_differs_under_noise(self):
        a, b = make_job(CPU_HEAVY), make_job(GPU_HEAVY)
        # The profiler measured every stage at twice its true length.
        wrong = (CPU_HEAVY.scaled(2.0), GPU_HEAVY.scaled(2.0))
        offsets, _ = best_ordering(wrong)
        group = JobGroup(jobs=(a, b), believed_profiles=wrong, offsets=offsets)
        assert group.believed_period == pytest.approx(2 * group.actual_period())

    def test_normalized_throughputs(self):
        group = make_pair()
        tputs = group.normalized_throughputs()
        assert set(tputs) == {job.job_id for job in group.jobs}
        for job in group.jobs:
            expected = job.profile.iteration_time / group.actual_period()
            assert tputs[job.job_id] == pytest.approx(expected)
        assert all(0 < v <= 1 for v in tputs.values())

    def test_busy_time(self):
        group = make_pair()
        assert group.busy_time(1) == pytest.approx(0.7 + 0.1)  # CPU
        assert group.busy_time(2) == pytest.approx(0.1 + 0.7)  # GPU

    def test_contains(self):
        group = make_pair()
        assert group.jobs[0] in group
        assert make_job() not in group

    def test_coordinated_default(self):
        assert make_pair().coordinated
