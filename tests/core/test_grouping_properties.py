"""Property-based tests for the multi-round grouping algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.models.zoo import DEFAULT_MODELS, get_model


@st.composite
def job_batches(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    jobs = []
    for _ in range(n):
        model = get_model(draw(st.sampled_from(DEFAULT_MODELS)))
        gpus = draw(st.sampled_from([1, 1, 2, 4]))
        jobs.append(
            Job(JobSpec(
                profile=model.stage_profile(gpus),
                num_gpus=gpus,
                num_iterations=draw(st.integers(min_value=1, max_value=1000)),
                model=model.name,
            ))
        )
    return jobs


@st.composite
def grouper_configs(draw):
    return MultiRoundGrouper(
        max_group_size=draw(st.sampled_from([1, 2, 3, 4])),
        matcher=draw(st.sampled_from(["blossom", "greedy"])),
        ordering=draw(st.sampled_from(["best", "worst", "identity"])),
        min_efficiency=draw(st.sampled_from([0.0, 0.3])),
    )


@settings(max_examples=80, deadline=None)
@given(job_batches(), grouper_configs(), st.integers(min_value=0, max_value=30))
def test_grouping_invariants(jobs, grouper, capacity_raw):
    capacity = capacity_raw or None
    result = grouper.group(jobs, capacity=capacity)

    # Every job appears in exactly one group.
    seen = [job.job_id for group in result.groups for job in group.jobs]
    assert sorted(seen) == sorted(job.job_id for job in jobs)

    for group in result.groups:
        # Size cap respected.
        assert group.size <= grouper.max_group_size
        # GPU-count homogeneity (bucketing).
        assert len({job.num_gpus for job in group.jobs}) == 1
        # Offsets are valid (distinct mod k).
        assert len(set(o % 4 for o in group.offsets)) == group.size
        # Efficiency is a valid fraction.
        assert 0 < group.believed_efficiency <= 1 + 1e-9

    # Reported demand matches the plan.
    assert result.total_gpu_demand == sum(g.num_gpus for g in result.groups)


@settings(max_examples=50, deadline=None)
@given(job_batches(), st.integers(min_value=1, max_value=40))
def test_capacity_is_binding_or_unreachable(jobs, capacity):
    """After grouping, either demand fits the capacity or no further
    merge could have reduced it (max group size / bucket limits)."""
    grouper = MultiRoundGrouper()
    result = grouper.group(jobs, capacity=capacity)
    if result.total_gpu_demand <= capacity:
        return
    # Demand above capacity: verify no merge remains possible within
    # the same bucket and size cap.
    by_bucket = {}
    for group in result.groups:
        by_bucket.setdefault(group.num_gpus, []).append(group)
    for groups in by_bucket.values():
        sizes = sorted(g.size for g in groups)
        if len(sizes) >= 2:
            # The two smallest could only merge if they exceed the cap.
            assert sizes[0] + sizes[1] > grouper.max_group_size


@settings(max_examples=50, deadline=None)
@given(job_batches())
def test_grouping_is_deterministic(jobs):
    a = MultiRoundGrouper().group(jobs, capacity=2)
    b = MultiRoundGrouper().group(jobs, capacity=2)
    key_a = [frozenset(j.job_id for j in g.jobs) for g in a.groups]
    key_b = [frozenset(j.job_id for j in g.jobs) for g in b.groups]
    assert key_a == key_b


@settings(max_examples=50, deadline=None)
@given(job_batches())
def test_no_capacity_means_full_grouping(jobs):
    """Without a capacity, the algorithm merges as far as rounds allow:
    at most one undersized group per bucket remains."""
    grouper = MultiRoundGrouper(max_group_size=2)
    result = grouper.group(jobs)
    by_bucket = {}
    for group in result.groups:
        by_bucket.setdefault(group.num_gpus, []).append(group)
    for groups in by_bucket.values():
        singles = [g for g in groups if g.size == 1]
        assert len(singles) <= 1
