"""Tests for interleaving efficiency (Eq. 1-4) and group speedup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.efficiency import (
    efficiency_for_period,
    group_speedup,
    interleaving_efficiency,
    pair_efficiency,
)
from repro.jobs.stage import StageProfile

# Fig. 4 profiles over two resources (CPU, GPU):
# A uses 2 CPU then 1 GPU; B uses 1 CPU then 2 GPU; C is like A; D like B.
A = StageProfile((2.0, 1.0))
B = StageProfile((1.0, 2.0))
C = StageProfile((2.0, 1.0))
D = StageProfile((1.0, 2.0))


class TestFigure4:
    def test_perfect_pair_efficiency_is_one(self):
        """Grouping A and B overlaps perfectly: gamma = 1."""
        assert interleaving_efficiency((A, B), num_resources=2) == pytest.approx(1.0)

    def test_poor_pair_efficiency(self):
        """Grouping A and C leaves the GPU idle half the time: gamma = 0.75."""
        assert interleaving_efficiency((A, C), num_resources=2) == pytest.approx(0.75)

    def test_plan1_beats_plan2(self):
        plan1 = (
            interleaving_efficiency((A, B), num_resources=2)
            + interleaving_efficiency((C, D), num_resources=2)
        )
        plan2 = (
            interleaving_efficiency((A, C), num_resources=2)
            + interleaving_efficiency((B, D), num_resources=2)
        )
        assert plan1 == pytest.approx(2.0)
        assert plan1 > plan2


class TestFigure2:
    def test_interleaving_two_pipelined_jobs(self):
        """Fig. 2: jobs A (GPU-lean) and B (network-lean) interleave to
        ~1.7x combined throughput."""
        # Stylized from the figure: A is GPU-heavy with a short network
        # remainder, B the reverse, and the overlap is imperfect.
        job_a = StageProfile((4.0, 2.0))
        job_b = StageProfile((1.0, 3.0))
        speedup = group_speedup((job_a, job_b), num_resources=2)
        # T = max(4, 3) + max(2, 1) = 6; total = (6 + 4) / 6.
        assert speedup == pytest.approx(10.0 / 6.0)
        assert 1.5 < speedup < 2.0


class TestEfficiencyForPeriod:
    def test_fully_busy(self):
        assert efficiency_for_period([A, B], 3.0, num_resources=2) == pytest.approx(1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            efficiency_for_period([A], 0.0, num_resources=2)

    def test_single_job_efficiency(self):
        # Solo A: CPU busy 2/3, GPU busy 1/3 -> gamma = 0.5.
        gamma = interleaving_efficiency((A,), num_resources=2)
        assert gamma == pytest.approx(0.5)


class TestOrderingPolicies:
    def test_worst_not_better_than_best(self):
        p = StageProfile((1.0, 2.0, 1.0, 1.0))
        q = StageProfile((1.0, 1.0, 2.0, 1.0))
        best = interleaving_efficiency((p, q), ordering="best")
        worst = interleaving_efficiency((p, q), ordering="worst")
        assert worst <= best

    def test_explicit_offsets(self):
        p = StageProfile((1.0, 2.0, 1.0, 1.0))
        q = StageProfile((1.0, 1.0, 2.0, 1.0))
        gamma = interleaving_efficiency((p, q), offsets=(0, 1))
        assert 0 < gamma <= 1

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            interleaving_efficiency((A, B), ordering="random", num_resources=2)


class TestPairEfficiency:
    def test_symmetric(self):
        p = StageProfile((0.6, 0.2, 0.1, 0.1))
        q = StageProfile((0.1, 0.1, 0.7, 0.1))
        assert pair_efficiency(p, q) == pytest.approx(pair_efficiency(q, p))

    def test_identical_jobs_have_low_efficiency(self):
        p = StageProfile((0.0, 0.0, 1.0, 0.0))
        q = StageProfile((0.0, 0.0, 1.0, 0.0))
        # Two GPU-only jobs: GPU always busy, other three always idle.
        assert pair_efficiency(p, q) == pytest.approx(0.25)


class TestGroupSpeedup:
    def test_single_job_speedup_is_one(self):
        assert group_speedup((A,), num_resources=2) == pytest.approx(1.0)

    def test_perfect_quad_reaches_four(self):
        """Fig. 1(b): four single-stage jobs yield 4x throughput."""
        jobs = [
            StageProfile(tuple(1.0 if i == r else 0.0 for i in range(4)))
            for r in range(4)
        ]
        assert group_speedup(jobs) == pytest.approx(4.0)

    def test_identical_jobs_no_speedup(self):
        jobs = [StageProfile((0.0, 0.0, 1.0, 0.0))] * 4
        assert group_speedup(jobs) == pytest.approx(1.0)

    def test_table2_quad_speedup_near_two(self):
        """Table 2: the four-model example reaches ~2x total."""
        from repro.models.zoo import get_model

        profiles = [
            get_model(m).stage_profile(16)
            for m in ("ShuffleNet", "A2C", "GPT-2", "VGG16")
        ]
        speedup = group_speedup(profiles)
        assert 1.8 <= speedup <= 2.6


@st.composite
def groups(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    return [
        StageProfile(
            tuple(
                draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=5.0),
                        min_size=4,
                        max_size=4,
                    ).filter(lambda d: sum(d) > 0)
                )
            )
        )
        for _ in range(size)
    ]


@settings(max_examples=150, deadline=None)
@given(groups())
def test_efficiency_in_unit_interval(profiles):
    gamma = interleaving_efficiency(profiles)
    assert 0.0 < gamma <= 1.0 + 1e-9


@settings(max_examples=150, deadline=None)
@given(groups())
def test_speedup_bounds(profiles):
    """1 <= total normalized throughput <= group size."""
    speedup = group_speedup(profiles)
    assert speedup >= 1.0 - 1e-9
    assert speedup <= len(profiles) + 1e-9


@settings(max_examples=100, deadline=None)
@given(groups())
def test_best_ordering_maximizes_efficiency(profiles):
    best = interleaving_efficiency(profiles, ordering="best")
    ident = interleaving_efficiency(profiles, ordering="identity")
    assert best >= ident - 1e-9
