"""Tests for the priority policies (SRSF, 2D-LAS, and friends)."""

import pytest

from repro.core.priorities import (
    POLICIES,
    fifo_priority,
    get_policy,
    gittins_priority,
    las2d_priority,
    las_priority,
    sjf_priority,
    srsf_priority,
    srtf_priority,
)
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile

PROFILE = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 s per iteration


def make_job(iters=100, gpus=1, submit=0.0):
    return Job(JobSpec(profile=PROFILE, num_gpus=gpus, submit_time=submit,
                       num_iterations=iters))


def test_fifo_orders_by_submission():
    early, late = make_job(submit=1.0), make_job(submit=5.0)
    assert fifo_priority(early, 10.0) < fifo_priority(late, 10.0)


def test_sjf_orders_by_total_size():
    small, big = make_job(iters=10), make_job(iters=100)
    assert sjf_priority(small, 0.0) < sjf_priority(big, 0.0)


def test_sjf_static_under_progress():
    job = make_job(iters=100)
    before = sjf_priority(job, 0.0)
    job.advance(50.0, 50.0)
    assert sjf_priority(job, 0.0) == before


def test_srtf_tracks_remaining():
    job = make_job(iters=100)
    before = srtf_priority(job, 0.0)
    job.advance(40.0, 40.0)
    assert srtf_priority(job, 0.0) == pytest.approx(before - 40.0)


def test_srtf_ignores_gpus():
    narrow, wide = make_job(iters=50, gpus=1), make_job(iters=50, gpus=8)
    assert srtf_priority(narrow, 0.0) == srtf_priority(wide, 0.0)


def test_srsf_scales_with_gpus():
    """The paper: p_i = r_i * g_i."""
    narrow, wide = make_job(iters=50, gpus=1), make_job(iters=50, gpus=8)
    assert srsf_priority(wide, 0.0) == pytest.approx(8 * srsf_priority(narrow, 0.0))


def test_las_prefers_fresh_jobs():
    fresh, veteran = make_job(), make_job()
    veteran.advance(10.0, 10.0)
    assert las_priority(fresh, 0.0) < las_priority(veteran, 0.0)


def test_las2d_scales_with_gpus():
    """The paper: p_i = a_i * g_i."""
    narrow, wide = make_job(gpus=1), make_job(gpus=4)
    narrow.advance(10.0, 10.0)
    wide.advance(10.0, 10.0)
    assert las2d_priority(wide, 0.0) == pytest.approx(
        4 * las2d_priority(narrow, 0.0)
    )


def test_las_family_is_duration_blind():
    short, long_ = make_job(iters=1), make_job(iters=10_000)
    assert las_priority(short, 0.0) == las_priority(long_, 0.0)
    assert las2d_priority(short, 0.0) == las2d_priority(long_, 0.0)


def test_gittins_zero_for_new_jobs():
    assert gittins_priority(make_job(), 0.0) == 0.0


def test_gittins_grows_in_steps():
    job = make_job(iters=100_000)
    values = []
    for wall in (10.0, 100.0, 1000.0):
        job.advance(0.0, wall)
        values.append(gittins_priority(job, 0.0))
    assert values == sorted(values)
    assert len(set(values)) > 1


def test_get_policy_known_names():
    for name in POLICIES:
        assert callable(get_policy(name))


def test_get_policy_case_insensitive():
    assert get_policy("SRSF") is srsf_priority


def test_get_policy_unknown():
    with pytest.raises(KeyError):
        get_policy("wfq")
