"""The batch event-driven replay harness.

The load-bearing test is the differential: at
``batch_step_seconds == 0`` the harness must produce a
:class:`~repro.sim.metrics.SimulationResult` *bit-identical* to
``ClusterSimulator.run()`` on the same workload — the whole
serialized payload, not just summary statistics.  That identity is
what lets every ``run()``-based oracle and experiment transfer to the
replay path unchanged.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.replay import ReplayStats, replay_trace, synthetic_trace
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator, SimulationError
from repro.trace.workload import build_jobs


def workload(num_jobs=500, seed=0):
    return build_jobs(synthetic_trace(num_jobs, seed=seed), seed=seed)


def payload(result):
    """Serialized result minus the one host-timing field."""
    data = result.to_dict()
    data.pop("wall_clock", None)
    return data


def simulator(scheduler_name="fifo", machines=32):
    return ClusterSimulator(
        make_scheduler(scheduler_name), cluster=Cluster(machines, 8)
    )


class TestContinuousModeIdentity:
    @pytest.mark.parametrize("scheduler", ["fifo", "muri-s", "srtf"])
    def test_batch_zero_identical_to_run(self, scheduler):
        specs = workload(num_jobs=500)
        reference = simulator(scheduler).run(list(specs), "replay-500")
        replayed, stats = replay_trace(
            simulator(scheduler), list(specs),
            trace_name="replay-500", batch_step_seconds=0.0,
        )
        # The full serialized result: JCTs, finish times, preemption
        # and restart accounting, the cluster time series — everything.
        assert payload(replayed) == payload(reference)
        assert stats.finished_jobs == len(specs)

    def test_identity_includes_fault_schedules(self):
        from repro.sim.faults import FaultInjector

        specs = workload(num_jobs=120)

        def build():
            return ClusterSimulator(
                make_scheduler("fifo"),
                cluster=Cluster(16, 8),
                fault_injector=FaultInjector(
                    mean_time_between_faults=900.0,
                    seed=3,
                    progress_loss=0.5,
                ),
            )

        reference = build().run(list(specs), "faulty")
        replayed, _ = replay_trace(
            build(), list(specs), trace_name="faulty",
            batch_step_seconds=0.0,
        )
        assert payload(replayed) == payload(reference)


class TestBatchAdmission:
    def test_batching_delays_but_finishes_everything(self):
        specs = workload(num_jobs=200)
        continuous, _ = replay_trace(
            simulator(), list(specs), batch_step_seconds=0.0
        )
        batched, stats = replay_trace(
            simulator(), list(specs), batch_step_seconds=600.0
        )
        assert len(batched.jcts) == len(specs)
        assert stats.finished_jobs == len(specs)
        # Quantized admission can only delay completion.
        assert batched.makespan >= continuous.makespan
        assert batched.avg_jct >= continuous.avg_jct

    def test_coarser_batching_means_fewer_admission_rounds(self):
        from repro.observe.tracer import Tracer

        def admission_rounds(batch_step):
            tracer = Tracer()
            sim = ClusterSimulator(
                make_scheduler("fifo"),
                cluster=Cluster(32, 8),
                tracer=tracer,
            )
            replay_trace(
                sim, workload(num_jobs=200),
                batch_step_seconds=batch_step,
            )
            # ``replay.round`` fires only when a round admits jobs, so
            # its count is the number of non-empty admission rounds
            # (``stats.rounds`` counts harness loop iterations, which
            # track simulator steps and do not shrink with batching).
            return len(tracer.events_named("replay.round"))

        fine = admission_rounds(300.0)
        coarse = admission_rounds(3600.0)
        assert 0 < coarse <= fine

    def test_deterministic_per_seed(self):
        specs = workload(num_jobs=150)
        first, _ = replay_trace(
            simulator(), list(specs), batch_step_seconds=300.0
        )
        second, _ = replay_trace(
            simulator(), list(specs), batch_step_seconds=300.0
        )
        assert payload(first) == payload(second)


class TestReplayStats:
    def test_stats_are_consistent(self):
        specs = workload(num_jobs=100)
        _, stats = replay_trace(
            simulator(), list(specs), batch_step_seconds=300.0
        )
        assert isinstance(stats, ReplayStats)
        assert stats.injected_jobs == len(specs)
        assert stats.finished_jobs == len(specs)
        assert stats.sim_steps > 0
        assert stats.rounds > 0
        assert stats.wall_clock > 0.0
        assert 0.0 <= stats.step_seconds_p50 <= stats.step_seconds_p99

    def test_to_dict_round_trips_through_json(self):
        import json

        specs = workload(num_jobs=50)
        _, stats = replay_trace(simulator(), list(specs))
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["injected_jobs"] == 50
        assert "_step_samples" not in payload

    def test_finalize_with_no_samples_keeps_zero_defaults(self):
        # A replay whose rounds all fast-forwarded drove no simulator
        # step; the percentile fold must not raise on the empty set.
        stats = ReplayStats()
        stats.finalize_step_stats()
        assert stats.step_seconds_p50 == 0.0
        assert stats.step_seconds_p99 == 0.0

    def test_finalize_with_one_sample_is_its_own_tail(self):
        stats = ReplayStats()
        stats._step_samples.append(0.25)
        stats.finalize_step_stats()
        assert stats.step_seconds_p50 == 0.25
        assert stats.step_seconds_p99 == 0.25

    def test_finalize_is_idempotent(self):
        stats = ReplayStats()
        stats._step_samples.extend([0.1, 0.2, 0.3, 0.4])
        stats.finalize_step_stats()
        first = (stats.step_seconds_p50, stats.step_seconds_p99)
        stats.finalize_step_stats()
        assert (stats.step_seconds_p50, stats.step_seconds_p99) == first


class TestValidation:
    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError, match="batch_step_seconds"):
            replay_trace(
                simulator(), workload(num_jobs=5),
                batch_step_seconds=-1.0,
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            replay_trace(simulator(), [])

    def test_round_valve_trips(self):
        specs = workload(num_jobs=20)
        with pytest.raises(SimulationError, match="round"):
            replay_trace(
                simulator(), list(specs),
                batch_step_seconds=300.0, max_rounds=1,
            )
