"""The constant-load synthetic trace behind the replay benchmarks."""

import pytest

from repro.replay.workload import synthetic_trace


class TestSyntheticTrace:
    def test_deterministic_per_seed(self):
        a = synthetic_trace(200, seed=4)
        b = synthetic_trace(200, seed=4)
        c = synthetic_trace(200, seed=5)
        assert a.records == b.records
        assert a.records != c.records

    def test_records_sorted_and_renumbered(self):
        trace = synthetic_trace(300, seed=1)
        submits = [r.submit_time for r in trace.records]
        assert submits == sorted(submits)
        assert [r.job_id for r in trace.records] == list(range(300))

    def test_constant_load_window_scales_with_jobs(self):
        small = synthetic_trace(1_000, seed=0)
        large = synthetic_trace(4_000, seed=0)
        small_window = max(r.submit_time for r in small.records)
        large_window = max(r.submit_time for r in large.records)
        # 4x the jobs spread over ~4x the window: offered load stays
        # flat, which is what makes replay wall time linear in jobs.
        assert large_window == pytest.approx(4 * small_window, rel=0.05)

    def test_durations_and_gpus_within_bounds(self):
        trace = synthetic_trace(
            500, seed=2, duration_range=(10.0, 50.0), gpu_choices=(1, 2)
        )
        for record in trace.records:
            assert 10.0 <= record.duration <= 50.0
            assert record.num_gpus in (1, 2)

    def test_default_name_embeds_size(self):
        assert synthetic_trace(42).name == "replay-42"
        assert synthetic_trace(5, name="x").name == "x"

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_trace(0)
        with pytest.raises(ValueError):
            synthetic_trace(10, jobs_per_day=0.0)
        with pytest.raises(ValueError):
            synthetic_trace(10, duration_range=(0.0, 10.0))
        with pytest.raises(ValueError):
            synthetic_trace(10, duration_range=(50.0, 10.0))
