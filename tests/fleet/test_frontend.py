"""Fleet front-end: routing, admission, aggregation, and the merge."""

import pytest

from repro.fleet import (
    FleetFrontEnd,
    FleetTopology,
    TenantQuota,
    partition_cluster,
)
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.observe import Tracer
from repro.service import SubmitRejected

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def spec(iters=4, gpus=1, submit=0.0):
    return JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters)


def build_fleet(num_machines=4, gpus=4, shards=2, **options):
    topology = partition_cluster(num_machines, gpus, shards)
    return FleetFrontEnd.build(topology, scheduler="fifo", **options)


def test_least_pending_routing_with_topology_order_ties():
    frontend = build_fleet()
    vcs = [frontend.submit(spec()).vc for _ in range(4)]
    # Empty fleet: tie resolves to vc0; then alternation by queue depth.
    assert vcs == ["vc0", "vc1", "vc0", "vc1"]


def test_vc_hint_honoured_and_validated():
    frontend = build_fleet()
    assert frontend.submit(spec(), vc="vc1").vc == "vc1"
    with pytest.raises(SubmitRejected) as excinfo:
        frontend.submit(spec(), vc="nope")
    assert excinfo.value.code == "no_shard"
    assert excinfo.value.details["vc"] == "nope"


def test_no_shard_when_nothing_fits():
    frontend = build_fleet()  # two VCs of 8 GPUs each
    with pytest.raises(SubmitRejected) as excinfo:
        frontend.submit(spec(gpus=9))
    assert excinfo.value.code == "no_shard"
    assert excinfo.value.details["gpus"] == 9


def test_tenant_access_scopes_routing():
    topology = partition_cluster(4, 4, 2)
    scoped = FleetTopology(topology.vcs, tenant_access={"alice": ["vc1"]})
    frontend = FleetFrontEnd.build(scoped, scheduler="fifo")
    for _ in range(3):
        assert frontend.submit(spec(), tenant="alice").vc == "vc1"
    with pytest.raises(SubmitRejected) as excinfo:
        frontend.submit(spec(gpus=8), tenant="alice", vc="vc0")
    assert excinfo.value.code == "no_shard"
    assert excinfo.value.details["allowed"] == ["vc1"]


def test_submit_result_and_status_carry_tenant_and_vc():
    frontend = build_fleet()
    submitted = frontend.submit(spec(), tenant="alice")
    assert submitted.tenant == "alice"
    status = frontend.status(submitted.job_id)
    assert status["tenant"] == "alice"
    assert status["vc"] == submitted.vc
    fleet_status = frontend.status()
    assert set(fleet_status["shards"]) == {"vc0", "vc1"}
    assert fleet_status["tenants"]["alice"]["submitted"] == 1
    with pytest.raises(KeyError):
        frontend.status(424242)


def test_cancel_routes_to_the_owning_shard():
    frontend = build_fleet()
    job_id = frontend.submit(spec()).job_id
    assert frontend.cancel(job_id) is True
    assert frontend.cancel(job_id) is False
    assert frontend.cancel(424242) is False


def test_shard_rejects_propagate_with_tenant_and_roll_back():
    frontend = build_fleet(max_pending=1)
    frontend.submit(spec(), tenant="alice")
    frontend.submit(spec(), tenant="alice")
    with pytest.raises(SubmitRejected) as excinfo:
        frontend.submit(spec(), tenant="alice")
    assert excinfo.value.code == "queue_full"
    assert excinfo.value.tenant == "alice"
    snap = frontend.ledger.snapshot()["alice"]
    assert snap["submitted"] == 2  # the refused charge was rolled back
    assert snap["rejected"] == 1


def test_run_sync_merges_disjoint_shard_results():
    tracer = Tracer()
    frontend = build_fleet(tracer=tracer)
    ids = [frontend.submit(spec(iters=2 + i)).job_id for i in range(6)]
    result = frontend.run_sync()
    assert sorted(result.jcts) == sorted(ids)
    assert frontend.result is result
    assert frontend.is_done
    per_shard = [
        shard.service.result for shard in frontend.shards.values()
    ]
    assert sum(len(r.jcts) for r in per_shard) == len(ids)
    assert result.makespan == max(r.makespan for r in per_shard)
    assert tracer.counters["fleet.submitted"] == 6
    routed = sum(
        tracer.counters[f"fleet.routed.{name}"]
        for name in frontend.topology.names
    )
    assert routed == 6
    # The merged timeseries is time-sorted across shards.
    times = [point.time for point in result.timeseries]
    assert times == sorted(times)


def test_burst_tenant_is_rejected_while_others_stay_responsive():
    """One tenant floods past its quota; the fleet answers everyone.

    The flooding tenant gets structured ``quota_exceeded`` rejects
    (with its open-job count pinned in the details) and never occupies
    more than its quota; the steady tenant's submissions are all
    admitted and its p99 submit->decision latency stays bounded — the
    admission path is O(open jobs), not O(flood size).
    """
    quotas = {"flood": TenantQuota(max_pending=5)}
    frontend = build_fleet(quotas=quotas)
    flood_rejects = []
    for i in range(60):
        # Interleave: the flood hammers while the steady tenant works.
        try:
            frontend.submit(spec(), tenant="flood")
        except SubmitRejected as rejection:
            flood_rejects.append(rejection)
        if i % 2 == 0:
            frontend.submit(spec(), tenant="steady")

    assert len(flood_rejects) == 55  # everything past the 5-job quota
    assert all(r.code == "quota_exceeded" for r in flood_rejects)
    assert all(r.tenant == "flood" for r in flood_rejects)
    assert all(
        r.details == {"open_jobs": 5, "max_pending": 5}
        for r in flood_rejects
    )
    snap = frontend.ledger.snapshot()
    assert snap["flood"]["open_jobs"] == 5
    assert snap["steady"]["submitted"] == 30
    assert snap["steady"]["rejected"] == 0
    _p50, p99 = frontend.latency_percentiles("steady")
    assert 0.0 < p99 < 0.25  # seconds; admission is microseconds
    result = frontend.run_sync()
    # Every admitted job (both tenants) finishes in the merged drain.
    assert len(result.jcts) == 35


def test_credit_exhaustion_uses_virtual_time():
    quotas = {"m": TenantQuota(credit_rate=1.0, credit_burst=2.0)}
    frontend = build_fleet(quotas=quotas)
    frontend.submit(spec(gpus=2), tenant="m")
    with pytest.raises(SubmitRejected) as excinfo:
        frontend.submit(spec(gpus=1), tenant="m")
    assert excinfo.value.code == "credits_exhausted"
    # A later virtual submit_time refills the bucket.
    frontend.submit(spec(gpus=1, submit=10.0), tenant="m")
