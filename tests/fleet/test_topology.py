"""Virtual-cluster topology and partitioning."""

import pytest

from repro.fleet import FleetTopology, VirtualCluster, partition_cluster


def test_even_partition():
    topology = partition_cluster(8, 8, 4)
    assert topology.names == ("vc0", "vc1", "vc2", "vc3")
    assert [vc.machines for vc in topology.vcs] == [2, 2, 2, 2]
    assert topology.total_gpus == 64
    assert all(vc.total_gpus == 16 for vc in topology.vcs)


def test_remainder_goes_to_earlier_vcs():
    topology = partition_cluster(10, 4, 4)
    assert [vc.machines for vc in topology.vcs] == [3, 3, 2, 2]
    assert topology.total_gpus == 40


def test_partition_validation():
    with pytest.raises(ValueError):
        partition_cluster(4, 8, 0)
    with pytest.raises(ValueError):
        partition_cluster(2, 8, 3)


def test_vc_validation():
    with pytest.raises(ValueError):
        VirtualCluster(name="", machines=1, gpus_per_machine=1)
    with pytest.raises(ValueError):
        VirtualCluster(name="vc", machines=0, gpus_per_machine=1)
    with pytest.raises(ValueError):
        VirtualCluster(name="vc", machines=1, gpus_per_machine=0)


def test_build_cluster_shape():
    vc = VirtualCluster(name="vc0", machines=3, gpus_per_machine=4)
    cluster = vc.build_cluster()
    assert cluster.total_gpus == 12 == vc.total_gpus


def test_topology_rejects_duplicates_and_empty():
    vc = VirtualCluster(name="a", machines=1, gpus_per_machine=1)
    with pytest.raises(ValueError):
        FleetTopology([])
    with pytest.raises(ValueError):
        FleetTopology([vc, vc])


def test_tenant_access_map():
    topology = partition_cluster(4, 8, 2)
    scoped = FleetTopology(
        topology.vcs, tenant_access={"alice": ["vc1"]}
    )
    assert [vc.name for vc in scoped.allowed_vcs("alice")] == ["vc1"]
    # Tenants without an entry may use every VC, in declaration order.
    assert scoped.allowed_vcs("bob") == scoped.vcs
    with pytest.raises(ValueError):
        FleetTopology(topology.vcs, tenant_access={"eve": ["nope"]})


def test_get():
    topology = partition_cluster(4, 8, 2)
    assert topology.get("vc1").name == "vc1"
    assert topology.get("vc9") is None
