"""Tenant quotas and fair-share credit buckets."""

import pytest

from repro.fleet import TenantLedger, TenantQuota
from repro.service import SubmitRejected


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(max_pending=0)
    with pytest.raises(ValueError):
        TenantQuota(credit_rate=-1.0, credit_burst=1.0)
    with pytest.raises(ValueError):
        # A metered bucket with no capacity could never admit anything.
        TenantQuota(credit_rate=1.0, credit_burst=0.0)


def test_unlimited_by_default():
    ledger = TenantLedger()
    for i in range(100):
        ledger.charge("anyone", now=0.0, cost=64.0, open_jobs=i)
    assert ledger.accounts["anyone"].submitted == 100


def test_pending_quota_rejects_with_details():
    ledger = TenantLedger({"t": TenantQuota(max_pending=3)})
    account = ledger.charge("t", now=0.0, cost=1.0, open_jobs=2)
    assert account.submitted == 1
    with pytest.raises(SubmitRejected) as excinfo:
        ledger.charge("t", now=0.0, cost=1.0, open_jobs=3)
    rejection = excinfo.value
    assert rejection.code == "quota_exceeded"
    assert rejection.tenant == "t"
    assert rejection.details == {"open_jobs": 3, "max_pending": 3}
    assert ledger.accounts["t"].rejected == 1


def test_credit_bucket_drains_and_refills_over_virtual_time():
    ledger = TenantLedger(
        {"t": TenantQuota(credit_rate=1.0, credit_burst=4.0)}
    )
    # The bucket starts full (= burst) and each charge costs its GPUs.
    ledger.charge("t", now=0.0, cost=4.0, open_jobs=0)
    with pytest.raises(SubmitRejected) as excinfo:
        ledger.charge("t", now=0.0, cost=1.0, open_jobs=1)
    assert excinfo.value.code == "credits_exhausted"
    assert excinfo.value.details["balance"] == 0.0
    assert excinfo.value.details["cost"] == 1.0
    # Two virtual seconds at rate 1.0 earn exactly two credits back.
    ledger.charge("t", now=2.0, cost=2.0, open_jobs=1)
    assert ledger.accounts["t"].credits == 0.0


def test_credit_refill_caps_at_burst_and_clamps_regressions():
    ledger = TenantLedger(
        {"t": TenantQuota(credit_rate=10.0, credit_burst=5.0)}
    )
    ledger.charge("t", now=100.0, cost=1.0, open_jobs=0)
    account = ledger.accounts["t"]
    assert account.credits == 4.0  # refill capped at burst, then -1
    # A clock regression must not mint credits or move last_refill back.
    ledger.charge("t", now=50.0, cost=1.0, open_jobs=1)
    assert account.credits == 3.0
    assert account.last_refill == 100.0


def test_strict_mode_rejects_unknown_tenants():
    ledger = TenantLedger({"known": TenantQuota()}, strict=True)
    ledger.charge("known", now=0.0, cost=1.0, open_jobs=0)
    with pytest.raises(SubmitRejected) as excinfo:
        ledger.charge("stranger", now=0.0, cost=1.0, open_jobs=0)
    assert excinfo.value.code == "unknown_tenant"
    assert excinfo.value.details == {"known_tenants": ["known"]}


def test_default_quota_applies_to_unlisted_tenants():
    ledger = TenantLedger(default_quota=TenantQuota(max_pending=1))
    ledger.charge("new", now=0.0, cost=1.0, open_jobs=0)
    with pytest.raises(SubmitRejected):
        ledger.charge("new", now=0.0, cost=1.0, open_jobs=1)


def test_snapshot():
    ledger = TenantLedger({"t": TenantQuota(max_pending=1)})
    ledger.charge("t", now=0.0, cost=2.0, open_jobs=0)
    with pytest.raises(SubmitRejected):
        ledger.charge("t", now=0.0, cost=1.0, open_jobs=1)
    snap = ledger.snapshot()
    assert snap["t"]["submitted"] == 1
    assert snap["t"]["rejected"] == 1
