"""The shard-vs-serial differential oracle (bit-identity)."""

import random

import pytest

from repro.fleet import FleetFrontEnd, make_shard, partition_cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.verify import InvariantViolation, compare_fleet_serial


def make_stream(count, seed):
    """A seeded mixed-GPU multi-tenant submission stream."""
    rng = random.Random(seed)
    stream = []
    tenants = ("alice", "bob", "carol")
    for i in range(count):
        profile = StageProfile(tuple(
            round(rng.uniform(0.05, 2.0), 3) for _ in range(4)
        ))
        spec = JobSpec(
            profile=profile,
            num_gpus=rng.choice((1, 1, 2, 4)),
            num_iterations=rng.randint(5, 40),
            submit_time=round(i * rng.uniform(0.0, 3.0), 3),
        )
        stream.append((spec, tenants[i % len(tenants)]))
    return stream


def run_fleet(scheduler="muri-s", count=48, seed=7, **options):
    topology = partition_cluster(8, 4, 4)
    frontend = FleetFrontEnd.build(topology, scheduler=scheduler, **options)
    for spec, tenant in make_stream(count, seed):
        frontend.submit(spec, tenant=tenant)
    frontend.run_sync()
    return frontend


def factory(scheduler="muri-s", **options):
    return lambda vc: make_shard(vc, scheduler=scheduler, **options)


def test_muri_shards_match_serial_replays():
    frontend = run_fleet("muri-s", event_regroup=True)
    serial = compare_fleet_serial(
        frontend, factory("muri-s", event_regroup=True)
    )
    assert set(serial) == {"vc0", "vc1", "vc2", "vc3"}
    assert sum(len(r.jcts) for r in serial.values()) == 48


def test_fifo_shards_match_serial_replays():
    frontend = run_fleet("fifo")
    compare_fleet_serial(frontend, factory("fifo"))


def test_oracle_requires_a_drained_fleet():
    topology = partition_cluster(4, 4, 2)
    frontend = FleetFrontEnd.build(topology, scheduler="fifo")
    with pytest.raises(ValueError):
        compare_fleet_serial(frontend, factory("fifo"))


def test_oracle_detects_divergence():
    frontend = run_fleet("fifo", count=12)
    shard_result = frontend.shards["vc0"].service.result
    job_id = next(iter(shard_result.jcts))
    shard_result.jcts[job_id] += 1.0
    with pytest.raises(InvariantViolation) as excinfo:
        compare_fleet_serial(frontend, factory("fifo"))
    violation = excinfo.value
    assert violation.invariant == "differential.fleet"
    assert violation.details["vc"] == "vc0"
    assert violation.details["field"] == "jcts"


def test_oracle_detects_mismatched_factory():
    # A factory that builds shards differently from the fleet's own
    # (different scheduler) must not silently pass.
    frontend = run_fleet("fifo", count=24)
    with pytest.raises(InvariantViolation):
        compare_fleet_serial(frontend, factory("srsf"))
