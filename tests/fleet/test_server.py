"""FleetServer socket round-trips: one socket, many tenants."""

import asyncio
import os
import threading
import time

import pytest

from repro.fleet import FleetFrontEnd, FleetServer, partition_cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.service import ServiceClient, SubmitRejected
from repro.fleet import TenantQuota

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def spec(iters=4, gpus=1, submit=0.0):
    return JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters)


@pytest.fixture
def fleet_client(tmp_path):
    """A 2-shard fleet served on a temp socket; yields a client."""
    path = str(tmp_path / "fleet.sock")
    topology = partition_cluster(4, 4, 2)
    # The capped tenant's bucket never refills (rate 0), so its second
    # submission rejects deterministically even though the virtual
    # clock may have already finished its first job.
    frontend = FleetFrontEnd.build(
        topology,
        scheduler="fifo",
        quotas={"capped": TenantQuota(credit_rate=0.0, credit_burst=1.0)},
    )
    server = FleetServer(frontend, path, linger=2.0)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve()), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise RuntimeError("fleet socket never appeared")
        time.sleep(0.01)
    client = ServiceClient(path, timeout=30.0)
    try:
        yield client, server, thread
    finally:
        try:
            client.drain()
        except Exception:
            pass
        client.close()
        thread.join(timeout=10.0)


def test_multi_tenant_session_over_one_socket(fleet_client):
    client, server, thread = fleet_client
    assert client.ping() is True
    a = client.submit(spec(10), tenant="alice")
    b = client.submit(spec(20), tenant="bob", vc="vc1")
    assert a.tenant == "alice"
    assert b.vc == "vc1"
    status = client.status(a.job_id)
    assert status["tenant"] == "alice"
    fleet_status = client.status()
    assert set(fleet_status["shards"]) == {"vc0", "vc1"}
    client.drain()
    result = client.result(timeout=30.0)
    assert sorted(result.jcts) == sorted([a.job_id, b.job_id])
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert not os.path.exists(server.path)


def test_tenant_rejects_cross_the_socket(fleet_client):
    client, _server, _thread = fleet_client
    client.submit(spec(50), tenant="capped")
    with pytest.raises(SubmitRejected) as excinfo:
        client.submit(spec(), tenant="capped")
    rejection = excinfo.value
    assert rejection.code == "credits_exhausted"
    assert rejection.tenant == "capped"
    assert rejection.details["burst"] == 1.0


def test_no_shard_crosses_the_socket(fleet_client):
    client, _server, _thread = fleet_client
    with pytest.raises(SubmitRejected) as excinfo:
        client.submit(spec(gpus=9))
    assert excinfo.value.code == "no_shard"
