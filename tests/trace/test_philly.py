"""Tests for the Philly-like trace generator."""

import pytest

from repro.trace.philly import (
    PAPER_TRACE_IDS,
    PhillyTraceGenerator,
    TRACE_PRESETS,
    generate_trace,
)


def test_four_presets():
    assert set(TRACE_PRESETS) == set(PAPER_TRACE_IDS) == {"1", "2", "3", "4"}


def test_preset_job_counts_span_paper_range():
    counts = sorted(p.num_jobs for p in TRACE_PRESETS.values())
    assert counts[0] == 992
    assert counts[-1] == 5755


def test_generate_default_size():
    trace = generate_trace("1", num_jobs=100)
    assert len(trace) == 100


def test_generate_full_size():
    trace = generate_trace("3")
    assert len(trace) == TRACE_PRESETS["3"].num_jobs


def test_reproducible():
    a = generate_trace("2", num_jobs=150, seed=9)
    b = generate_trace("2", num_jobs=150, seed=9)
    assert tuple(a) == tuple(b)


def test_seed_changes_trace():
    a = generate_trace("2", num_jobs=150, seed=1)
    b = generate_trace("2", num_jobs=150, seed=2)
    assert tuple(a) != tuple(b)


def test_target_load_respected():
    for trace_id, preset in TRACE_PRESETS.items():
        trace = generate_trace(trace_id, num_jobs=300, seed=0)
        assert trace.load_factor(preset.reference_gpus) == pytest.approx(
            preset.target_load, rel=1e-6
        )


def test_target_load_independent_of_size():
    small = generate_trace("1", num_jobs=100, seed=0)
    large = generate_trace("1", num_jobs=800, seed=0)
    assert small.load_factor(64) == pytest.approx(large.load_factor(64), rel=1e-6)


def test_gpu_counts_are_powers_of_two():
    trace = generate_trace("2", num_jobs=400, seed=0)
    for record in trace:
        assert record.num_gpus & (record.num_gpus - 1) == 0


def test_single_gpu_jobs_dominate():
    trace = generate_trace("4", num_jobs=1000, seed=0)
    singles = sum(1 for r in trace if r.num_gpus == 1)
    assert singles > len(trace) * 0.5


def test_durations_clipped():
    preset = TRACE_PRESETS["1"]
    trace = generate_trace("1", num_jobs=1000, seed=0)
    for record in trace:
        assert 30.0 <= record.duration <= preset.duration_cap * 1.0001


def test_trace3_has_long_head_jobs():
    trace = generate_trace("3", num_jobs=400, seed=0)
    head = list(trace)[: len(trace) // 10]
    longest_head = max(r.duration for r in head)
    assert longest_head > 8 * 3600.0


def test_prime_variants():
    for spec in ("1'", "1-prime"):
        trace = generate_trace(spec, num_jobs=50, seed=0)
        assert all(r.submit_time == 0.0 for r in trace)
        assert trace.name.endswith("-prime")


def test_prime_flag():
    trace = generate_trace("2", num_jobs=50, seed=0, at_time_zero=True)
    assert all(r.submit_time == 0.0 for r in trace)


def test_unknown_trace_id():
    with pytest.raises(KeyError):
        generate_trace("9")


def test_invalid_size():
    with pytest.raises(ValueError):
        PhillyTraceGenerator(TRACE_PRESETS["1"]).generate(0)
