"""Tests for arrival processes."""

import random

import pytest

from repro.trace.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    zero_arrivals,
)


@pytest.mark.parametrize("generator,kwargs", [
    (poisson_arrivals, {}),
    (diurnal_arrivals, {}),
    (bursty_arrivals, {}),
])
def test_count_and_monotonicity(generator, kwargs):
    rng = random.Random(0)
    times = generator(rng, 200, 10.0, **kwargs)
    assert len(times) == 200
    assert times == sorted(times)
    assert all(t >= 0 for t in times)


def test_poisson_mean_interarrival():
    rng = random.Random(1)
    times = poisson_arrivals(rng, 5000, 10.0)
    mean = times[-1] / len(times)
    assert mean == pytest.approx(10.0, rel=0.1)


def test_poisson_invalid_rate():
    with pytest.raises(ValueError):
        poisson_arrivals(random.Random(0), 10, 0.0)


def test_poisson_reproducible():
    a = poisson_arrivals(random.Random(42), 50, 5.0)
    b = poisson_arrivals(random.Random(42), 50, 5.0)
    assert a == b


def test_diurnal_depth_validation():
    with pytest.raises(ValueError):
        diurnal_arrivals(random.Random(0), 10, 1.0, depth=1.0)


def test_bursty_contains_bursts():
    rng = random.Random(3)
    times = bursty_arrivals(rng, 400, 60.0, burst_fraction=0.5, burst_size=8)
    # Many gaps should be tiny (within-burst) despite the long mean.
    gaps = [b - a for a, b in zip(times, times[1:])]
    small = sum(1 for g in gaps if g < 5.0)
    assert small > len(gaps) * 0.3


def test_bursty_fraction_validation():
    with pytest.raises(ValueError):
        bursty_arrivals(random.Random(0), 10, 1.0, burst_fraction=1.5)


def test_zero_arrivals():
    assert zero_arrivals(5) == [0.0] * 5
    assert zero_arrivals(0) == []
