"""Tests for the real Philly-format loader (on a synthetic fixture)."""

import json

import pytest

from repro.trace.philly_loader import (
    load_philly_json,
    parse_philly_time,
    round_up_power_of_two,
)


def philly_entry(jobid, vc, submitted, attempts, status="Pass"):
    return {
        "jobid": jobid,
        "vc": vc,
        "submitted_time": submitted,
        "attempts": attempts,
        "status": status,
    }


def attempt(start, end, gpus_per_machine):
    return {
        "start_time": start,
        "end_time": end,
        "detail": [
            {"ip": f"m{i}", "gpus": [f"gpu{g}" for g in range(count)]}
            for i, count in enumerate(gpus_per_machine)
        ],
    }


@pytest.fixture()
def trace_file(tmp_path):
    entries = [
        philly_entry(
            "app_1", "vc-a", "2017-10-03 10:00:00",
            [attempt("2017-10-03 10:05:00", "2017-10-03 11:05:00", [2, 1])],
        ),
        philly_entry(
            "app_2", "vc-a", "2017-10-03 10:30:00",
            [
                attempt("2017-10-03 10:31:00", "2017-10-03 10:41:00", [1]),
                attempt("2017-10-03 11:00:00", "2017-10-03 11:20:00", [1]),
            ],
        ),
        philly_entry(
            "app_3", "vc-b", "2017-10-03 09:00:00",
            [attempt("2017-10-03 09:01:00", "2017-10-03 12:01:00", [8])],
        ),
        philly_entry(  # failed job
            "app_4", "vc-a", "2017-10-03 10:10:00",
            [attempt("2017-10-03 10:11:00", "2017-10-03 10:21:00", [1])],
            status="Killed",
        ),
        philly_entry(  # too short
            "app_5", "vc-a", "2017-10-03 10:20:00",
            [attempt("2017-10-03 10:20:01", "2017-10-03 10:20:05", [1])],
        ),
        philly_entry(  # unparsable times
            "app_6", "vc-a", "None",
            [attempt("None", "None", [1])],
        ),
    ]
    path = tmp_path / "cluster_job_log"
    path.write_text(json.dumps(entries))
    return path


class TestHelpers:
    def test_parse_time(self):
        parsed = parse_philly_time("2017-10-03 17:13:54")
        assert parsed is not None and parsed.hour == 17

    def test_parse_time_none(self):
        assert parse_philly_time("None") is None
        assert parse_philly_time("") is None
        assert parse_philly_time("garbage") is None

    @pytest.mark.parametrize("value,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (17, 32),
    ])
    def test_round_up_power_of_two(self, value, expected):
        assert round_up_power_of_two(value) == expected

    def test_round_up_invalid(self):
        with pytest.raises(ValueError):
            round_up_power_of_two(0)


class TestLoader:
    def test_loads_passing_jobs(self, trace_file):
        trace = load_philly_json(trace_file)
        # app_1, app_2, app_3 survive; 4 (failed), 5 (short), 6 (bad).
        assert len(trace) == 3

    def test_vc_filter(self, trace_file):
        trace = load_philly_json(trace_file, virtual_cluster="vc-a")
        assert len(trace) == 2
        assert trace.name.endswith("-vc-a")

    def test_submit_times_rebased(self, trace_file):
        trace = load_philly_json(trace_file, virtual_cluster="vc-a")
        assert trace[0].submit_time == 0.0
        assert trace[1].submit_time == pytest.approx(30 * 60.0)

    def test_duration_sums_attempts(self, trace_file):
        trace = load_philly_json(trace_file, virtual_cluster="vc-a")
        # app_2 had 10 + 20 minutes across two attempts.
        by_duration = sorted(r.duration for r in trace)
        assert by_duration[0] == pytest.approx(30 * 60.0)
        assert by_duration[1] == pytest.approx(60 * 60.0)

    def test_gpus_power_of_two(self, trace_file):
        trace = load_philly_json(trace_file)
        for record in trace:
            assert record.num_gpus & (record.num_gpus - 1) == 0
        # app_1 used 3 GPUs peak -> rounded to 4.
        assert max(r.num_gpus for r in load_philly_json(
            trace_file, virtual_cluster="vc-a")) == 4

    def test_include_failed(self, trace_file):
        trace = load_philly_json(
            trace_file, virtual_cluster="vc-a", include_failed=True
        )
        assert len(trace) == 3

    def test_no_jobs_raises(self, trace_file):
        with pytest.raises(ValueError):
            load_philly_json(trace_file, virtual_cluster="vc-nope")

    def test_feeds_build_jobs(self, trace_file):
        from repro.trace.workload import build_jobs

        trace = load_philly_json(trace_file)
        specs = build_jobs(trace, seed=0)
        assert len(specs) == len(trace)
