"""Tests for trace-to-job materialization."""

import pytest

from repro.models.zoo import DEFAULT_MODELS, get_model
from repro.trace.records import Trace, TraceRecord
from repro.trace.workload import assign_models, build_jobs


def make_trace(n=20):
    return Trace.from_records(
        "t",
        [
            TraceRecord(job_id=i, submit_time=float(i), duration=600.0,
                        num_gpus=1 << (i % 3))
            for i in range(n)
        ],
    )


class TestAssignModels:
    def test_seeded_and_reproducible(self):
        trace = make_trace()
        assert assign_models(trace, seed=5) == assign_models(trace, seed=5)
        assert assign_models(trace, seed=5) != assign_models(trace, seed=6)

    def test_draws_from_default_pool(self):
        names = assign_models(make_trace(200), seed=0)
        assert set(names) <= set(DEFAULT_MODELS)
        assert len(set(names)) > 4  # uses the breadth of the pool

    def test_respects_fixed_models(self):
        trace = Trace.from_records(
            "t", [TraceRecord(0, 0.0, 10.0, 1, model="Bert")]
        )
        assert assign_models(trace, seed=0) == ["Bert"]

    def test_custom_pool(self):
        names = assign_models(make_trace(), models=["A2C"], seed=0)
        assert set(names) == {"A2C"}

    def test_empty_pool(self):
        with pytest.raises(ValueError):
            assign_models(make_trace(), models=[])


class TestBuildJobs:
    def test_one_spec_per_record(self):
        trace = make_trace()
        specs = build_jobs(trace, seed=0)
        assert len(specs) == len(trace)

    def test_carries_trace_fields(self):
        trace = make_trace()
        specs = build_jobs(trace, seed=0)
        for record, spec in zip(trace, specs):
            assert spec.submit_time == record.submit_time
            assert spec.num_gpus == record.num_gpus
            assert spec.job_id == record.job_id

    def test_iterations_approximate_duration(self):
        """The paper derives iteration counts from trace durations."""
        trace = make_trace()
        specs = build_jobs(trace, seed=0)
        for record, spec in zip(trace, specs):
            solo = spec.num_iterations * spec.iteration_time
            assert solo == pytest.approx(record.duration, rel=0.01)

    def test_minimum_one_iteration(self):
        trace = Trace.from_records("t", [TraceRecord(0, 0.0, 0.001, 1)])
        specs = build_jobs(trace, seed=0)
        assert specs[0].num_iterations == 1

    def test_profile_matches_model(self):
        trace = Trace.from_records(
            "t", [TraceRecord(0, 0.0, 100.0, 4, model="GPT-2")]
        )
        spec = build_jobs(trace, seed=0)[0]
        assert spec.model == "GPT-2"
        assert spec.profile.durations == get_model("GPT-2").stage_profile(4).durations

    def test_model_pool_restriction(self):
        specs = build_jobs(make_trace(), models=["DQN", "Bert"], seed=1)
        assert {spec.model for spec in specs} <= {"DQN", "Bert"}
