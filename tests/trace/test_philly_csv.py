"""Golden-file tests of the Philly CSV ingestion adapter.

``data/philly_golden.csv`` is a committed 50-row fixture modelled on
the real Philly dump's failure modes: multi-attempt jobs, rows with a
missing job id, non-numeric GPU counts, CPU-only (zero-GPU) attempts
— both alongside GPU attempts and as a job's only attempts — open and
inverted (out-of-order) attempt windows, non-``Pass`` final statuses,
an unparseable submit time, and a sub-``min_duration`` job.  The
tests pin the *exact* skip/error accounting and the exact surviving
records, so any semantic drift in the adapter shows up as a diff
against this file.
"""

from datetime import datetime
from pathlib import Path

import pytest

from repro.trace.philly_csv import (
    CSV_FIELDS,
    IngestError,
    load_philly_csv,
    write_philly_csv,
)
from repro.trace.records import Trace, TraceRecord

GOLDEN = Path(__file__).parent / "data" / "philly_golden.csv"


class TestGoldenAccounting:
    def test_exact_skip_accounting(self):
        trace, report = load_philly_csv(GOLDEN)
        assert report.rows_read == 50
        assert report.jobs_seen == 43
        assert report.jobs_loaded == 37
        assert report.skipped == {
            "missing_field": 1,
            "bad_gpus": 1,
            "zero_gpus": 3,
            "bad_attempt_window": 2,
            "filtered_status": 2,
            "bad_submit_time": 1,
            "no_gpus": 2,
            "too_short": 1,
        }
        assert report.total_skipped == 13
        assert len(trace.records) == 37

    def test_exact_error_details_in_file_order(self):
        _, report = load_philly_csv(GOLDEN)
        assert report.errors == [
            IngestError(8, "app_05", "bad_attempt_window"),
            IngestError(10, None, "missing_field"),
            IngestError(11, "app_06", "bad_gpus"),
            IngestError(12, "app_06", "zero_gpus"),
            IngestError(13, "app_07", "bad_attempt_window"),
            IngestError(49, "app_42", "zero_gpus"),
            IngestError(51, "app_43", "zero_gpus"),
            IngestError(11, "app_06", "no_gpus"),
            IngestError(13, "app_07", "too_short"),
            IngestError(15, "app_08", "filtered_status"),
            IngestError(16, "app_09", "filtered_status"),
            IngestError(17, "app_10", "bad_submit_time"),
            IngestError(51, "app_43", "no_gpus"),
        ]

    def test_report_to_dict_is_json_friendly(self):
        import json

        _, report = load_philly_csv(GOLDEN)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["jobs_loaded"] == 37
        assert payload["skipped"]["bad_gpus"] == 1
        assert payload["skipped"]["zero_gpus"] == 3


class TestGoldenRecords:
    def test_submits_rebased_to_earliest_kept_job(self):
        trace, _ = load_philly_csv(GOLDEN)
        # app_03 (2017-10-04 23:00) is the earliest kept submission.
        first = trace.records[0]
        assert first.submit_time == 0.0
        assert first.duration == 2100.0
        assert first.num_gpus == 4  # 3 rounded up to a power of two

    def test_multi_attempt_durations_summed_and_peak_gpus(self):
        trace, _ = load_philly_csv(GOLDEN)
        # app_02: attempts of 600 + 600 + 1800 seconds, peak 8 GPUs,
        # submitted 65 minutes after the base.
        app_02 = next(
            r for r in trace.records if r.submit_time == 3900.0
        )
        assert app_02.duration == 3000.0
        assert app_02.num_gpus == 8

    def test_job_with_one_bad_attempt_still_loads(self):
        trace, _ = load_philly_csv(GOLDEN)
        # app_05: the inverted attempt is dropped, the good one kept.
        app_05 = next(
            r for r in trace.records if r.submit_time == 14400.0
        )
        assert app_05.duration == 600.0

    def test_cpu_only_attempt_dropped_but_job_survives(self):
        trace, report = load_philly_csv(GOLDEN)
        # app_42: the zero-GPU (CPU-only) attempt is dropped as
        # ``zero_gpus`` — never rounded up to 1 GPU — while the real
        # GPU attempt alone defines the job: 600 s on 2 GPUs.
        app_42 = next(r for r in trace.records if r.submit_time == 27000.0)
        assert app_42.duration == 600.0
        assert app_42.num_gpus == 2
        # app_43 is CPU-only in every attempt: each row is counted
        # ``zero_gpus`` and the job itself ends as ``no_gpus``.
        assert report.skipped["no_gpus"] == 2

    def test_trace_name_defaults_to_stem(self):
        trace, _ = load_philly_csv(GOLDEN)
        assert trace.name == "philly_golden"


class TestFilters:
    def test_vc_filter_counts_other_clusters(self):
        trace, report = load_philly_csv(GOLDEN, virtual_cluster="vc1")
        # app_03 + app_05 + app_43 (vc2), app_11 (vc3), 15 bulk vc2 jobs.
        assert report.skipped["filtered_vc"] == 19
        assert report.jobs_loaded == 19
        assert trace.name == "philly_golden-vc1"
        # The vc1 slice rebases to app_01's submission.
        assert trace.records[0].submit_time == 0.0

    def test_include_failed_keeps_non_pass_jobs(self):
        _, report = load_philly_csv(GOLDEN, include_failed=True)
        assert "filtered_status" not in report.skipped
        assert report.jobs_loaded == 39

    def test_min_duration_zero_keeps_short_jobs(self):
        _, report = load_philly_csv(GOLDEN, min_duration=0.0)
        assert "too_short" not in report.skipped
        assert report.jobs_loaded == 38

    def test_all_jobs_filtered_raises_with_accounting(self):
        with pytest.raises(ValueError, match="filtered_vc"):
            load_philly_csv(GOLDEN, virtual_cluster="no-such-vc")


class TestHeaderValidation:
    def test_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("job_id,vc\napp,vc1\n")
        with pytest.raises(ValueError, match="missing required columns"):
            load_philly_csv(bad)


class TestWriteRoundTrip:
    def test_roundtrip_reconstructs_integer_second_traces(self, tmp_path):
        original = Trace(name="rt", records=(
            TraceRecord(job_id=0, submit_time=0.0, duration=120.0, num_gpus=2),
            TraceRecord(job_id=1, submit_time=45.0, duration=600.0, num_gpus=8),
            TraceRecord(job_id=2, submit_time=90.0, duration=31.0, num_gpus=1),
        ))
        path = tmp_path / "rt.csv"
        assert write_philly_csv(original, path) == 3
        loaded, report = load_philly_csv(path, min_duration=0.0)
        assert report.total_skipped == 0
        assert [
            (r.submit_time, r.duration, r.num_gpus) for r in loaded.records
        ] == [
            (r.submit_time, r.duration, r.num_gpus)
            for r in original.records
        ]

    def test_written_header_matches_schema(self, tmp_path):
        trace = Trace(name="h", records=(
            TraceRecord(job_id=0, submit_time=0.0, duration=60.0, num_gpus=1),
        ))
        path = tmp_path / "h.csv"
        write_philly_csv(trace, path)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(CSV_FIELDS)

    def test_custom_anchor_shifts_absolute_times_only(self, tmp_path):
        trace = Trace(name="a", records=(
            TraceRecord(job_id=0, submit_time=0.0, duration=60.0, num_gpus=1),
            TraceRecord(job_id=1, submit_time=30.0, duration=90.0, num_gpus=2),
        ))
        path = tmp_path / "a.csv"
        write_philly_csv(trace, path, base_time=datetime(2020, 1, 1))
        loaded, _ = load_philly_csv(path, min_duration=0.0)
        assert [r.submit_time for r in loaded.records] == [0.0, 30.0]
