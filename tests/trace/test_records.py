"""Tests for trace records and trace transformations."""

import pytest

from repro.trace.records import Trace, TraceRecord


def make_trace():
    return Trace.from_records(
        "t",
        [
            TraceRecord(job_id=0, submit_time=100.0, duration=50.0, num_gpus=1),
            TraceRecord(job_id=1, submit_time=0.0, duration=200.0, num_gpus=4),
            TraceRecord(job_id=2, submit_time=50.0, duration=100.0, num_gpus=2),
        ],
    )


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(0, -1.0, 10.0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0, 0.0, 0.0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0, 0.0, 10.0, 0)

    def test_model_optional(self):
        assert TraceRecord(0, 0.0, 1.0, 1).model is None
        assert TraceRecord(0, 0.0, 1.0, 1, model="Bert").model == "Bert"


class TestTraceBasics:
    def test_sorted_by_submission(self):
        trace = make_trace()
        assert [r.job_id for r in trace] == [1, 2, 0]

    def test_len_and_getitem(self):
        trace = make_trace()
        assert len(trace) == 3
        assert trace[0].job_id == 1

    def test_total_gpu_seconds(self):
        assert make_trace().total_gpu_seconds == pytest.approx(
            50 * 1 + 200 * 4 + 100 * 2
        )

    def test_makespan_lower_bound(self):
        # Last solo completion: job 0 at 150, job 1 at 200, job 2 at 150.
        assert make_trace().makespan_lower_bound == pytest.approx(200.0)

    def test_load_factor(self):
        trace = make_trace()
        assert trace.load_factor(total_gpus=10) == pytest.approx(
            1050.0 / (100.0 * 10)
        )


class TestTransformations:
    def test_at_time_zero(self):
        prime = make_trace().at_time_zero()
        assert all(r.submit_time == 0.0 for r in prime)
        assert prime.name == "t-prime"
        assert len(prime) == 3

    def test_busiest_interval(self):
        records = [
            TraceRecord(i, float(t), 10.0, 1)
            for i, t in enumerate([0, 100, 101, 102, 500])
        ]
        trace = Trace.from_records("t", records)
        window = trace.busiest_interval(3)
        assert len(window) == 3
        # Densest 3-job window is 100..102, rebased to zero.
        assert [r.submit_time for r in window] == [0.0, 1.0, 2.0]

    def test_busiest_interval_whole_trace(self):
        trace = make_trace()
        assert trace.busiest_interval(10) is trace

    def test_busiest_interval_invalid(self):
        with pytest.raises(ValueError):
            make_trace().busiest_interval(0)

    def test_head(self):
        head = make_trace().head(2)
        assert [r.job_id for r in head] == [1, 2]

    def test_scaled_durations(self):
        scaled = make_trace().scaled_durations(2.0)
        assert scaled.total_gpu_seconds == pytest.approx(
            2 * make_trace().total_gpu_seconds
        )
        with pytest.raises(ValueError):
            make_trace().scaled_durations(0.0)


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = Trace.from_csv(path, name="t")
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a == b

    def test_csv_keeps_models(self, tmp_path):
        trace = Trace.from_records(
            "t", [TraceRecord(0, 0.0, 1.0, 1, model="GPT-2")]
        )
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        assert Trace.from_csv(path)[0].model == "GPT-2"

    def test_json_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = Trace.from_json(path)
        assert loaded.name == trace.name
        assert tuple(loaded) == tuple(trace)
