"""Property-based tests for traces and workload materialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.philly import TRACE_PRESETS, generate_trace
from repro.trace.records import Trace, TraceRecord
from repro.trace.workload import build_jobs


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    records = []
    for index in range(n):
        records.append(TraceRecord(
            job_id=index,
            submit_time=draw(st.floats(min_value=0, max_value=10_000)),
            duration=draw(st.floats(min_value=1.0, max_value=100_000)),
            num_gpus=draw(st.sampled_from([1, 2, 4, 8, 16])),
        ))
    return Trace.from_records("prop", records)


@settings(max_examples=100, deadline=None)
@given(traces())
def test_trace_ordering_invariant(trace):
    submits = [r.submit_time for r in trace]
    assert submits == sorted(submits)


@settings(max_examples=100, deadline=None)
@given(traces())
def test_prime_variant_preserves_everything_but_time(trace):
    prime = trace.at_time_zero()
    assert len(prime) == len(trace)
    assert all(r.submit_time == 0.0 for r in prime)
    assert sorted(r.duration for r in prime) == sorted(
        r.duration for r in trace
    )
    # Summation order can differ after the re-sort; compare to 1 ulp.
    assert prime.total_gpu_seconds == pytest.approx(
        trace.total_gpu_seconds, rel=1e-12
    )


@settings(max_examples=60, deadline=None)
@given(traces(), st.integers(min_value=1, max_value=40))
def test_busiest_interval_is_densest(trace, window):
    if window >= len(trace):
        return
    selected = trace.busiest_interval(window)
    assert len(selected) == window
    span = selected[-1].submit_time - selected[0].submit_time
    # No other window of the same size is tighter.
    submits = [r.submit_time for r in trace]
    best = min(
        submits[i + window - 1] - submits[i]
        for i in range(len(submits) - window + 1)
    )
    assert span == best
    assert selected[0].submit_time == 0.0  # rebased


@settings(max_examples=60, deadline=None)
@given(traces(), st.integers(min_value=0, max_value=2**31))
def test_build_jobs_durations_are_faithful(trace, seed):
    specs = build_jobs(trace, seed=seed)
    for record, spec in zip(trace, specs):
        solo = spec.num_iterations * spec.iteration_time
        # Within one iteration of the trace duration (rounding).
        assert abs(solo - record.duration) <= spec.iteration_time


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(sorted(TRACE_PRESETS)),
    st.integers(min_value=2, max_value=120),
    st.integers(min_value=0, max_value=50),
)
def test_generated_traces_hit_target_load(trace_id, num_jobs, seed):
    trace = generate_trace(trace_id, num_jobs=num_jobs, seed=seed)
    target = TRACE_PRESETS[trace_id].target_load
    assert trace.load_factor(64) == pytest.approx(
        target, rel=1e-6
    )
