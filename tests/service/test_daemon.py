"""Unit tests for the scheduler daemon (SchedulerService)."""

import asyncio

import pytest

from repro.cluster.cluster import Cluster
from repro.core.muri import MuriScheduler
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.observe.tracer import Tracer
from repro.schedulers.classic import FifoScheduler
from repro.service import SchedulerService, SubmitRejected, WallClock
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))  # 1 second per iteration


def spec(iters, gpus=1, submit=0.0, name=None):
    return JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters, name=name)


def make_service(scheduler=None, cluster=None, tracer=None, **kwargs):
    simulator = ClusterSimulator(
        scheduler or FifoScheduler(),
        cluster=cluster or Cluster(1, 2),
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
        tracer=tracer,
    )
    return SchedulerService(simulator, tracer=tracer, **kwargs)


class TestSubmitAndStatus:
    def test_submit_returns_distinct_ids(self):
        service = make_service()
        ids = [service.submit(spec(10)), service.submit(spec(10))]
        assert len(set(ids)) == 2

    def test_job_status_lifecycle(self):
        service = make_service()
        job_id = service.submit(spec(10))
        assert service.status(job_id)["status"] == "pending"
        result = service.run_sync()
        assert service.status(job_id)["status"] == "finished"
        assert result.jcts[job_id] == pytest.approx(10.0)

    def test_unknown_job_raises(self):
        with pytest.raises(KeyError):
            make_service().status(12345)

    def test_service_status_counts(self):
        service = make_service()
        service.submit(spec(5))
        service.submit(spec(5))
        status = service.status()
        assert status["jobs"] == 2
        assert status["pending"] == 2
        assert status["draining"] is False
        service.run_sync()
        status = service.status()
        assert status["finished"] == 2
        assert status["done"] is True


class TestAdmissionControl:
    def test_too_large_rejected(self):
        service = make_service(cluster=Cluster(1, 2))
        with pytest.raises(SubmitRejected) as excinfo:
            service.submit(spec(10, gpus=4))
        assert excinfo.value.code == "too_large"

    def test_queue_full_rejected(self):
        service = make_service(max_pending=2)
        service.submit(spec(10))
        service.submit(spec(10))
        with pytest.raises(SubmitRejected) as excinfo:
            service.submit(spec(10))
        assert excinfo.value.code == "queue_full"

    def test_draining_rejected(self):
        service = make_service()
        service.drain()
        with pytest.raises(SubmitRejected) as excinfo:
            service.submit(spec(10))
        assert excinfo.value.code == "draining"

    def test_stopped_rejected(self):
        service = make_service()
        service.submit(spec(10))
        service.run_sync()
        with pytest.raises(SubmitRejected) as excinfo:
            service.submit(spec(10))
        assert excinfo.value.code == "stopped"

    def test_rejection_counters(self):
        tracer = Tracer()
        service = make_service(cluster=Cluster(1, 2), tracer=tracer)
        with pytest.raises(SubmitRejected):
            service.submit(spec(10, gpus=4))
        assert tracer.counters.get("service.rejected.too_large") == 1

    def test_max_pending_validation(self):
        with pytest.raises(ValueError):
            make_service(max_pending=0)


class TestCancel:
    def test_cancel_pending_job(self):
        service = make_service()
        keep = service.submit(spec(10))
        drop = service.submit(spec(1000))
        assert service.cancel(drop) is True
        result = service.run_sync()
        assert service.status(drop)["status"] == "failed"
        assert drop not in result.jcts
        assert result.jcts[keep] == pytest.approx(10.0)

    def test_cancel_unknown_is_false(self):
        assert make_service().cancel(999) is False

    def test_cancel_terminal_is_false(self):
        service = make_service()
        job_id = service.submit(spec(5))
        service.run_sync()
        assert service.cancel(job_id) is False

    def test_cancel_running_requeues_group_partners(self):
        # Two 1-GPU jobs run as one Muri group on a 2-GPU machine;
        # cancelling one must not strand the partner.
        service = make_service(
            scheduler=MuriScheduler(policy="srsf"), cluster=Cluster(1, 2)
        )
        victim = service.submit(spec(500))
        partner = service.submit(spec(500))
        while service.status(victim)["status"] == "pending":
            service.step()
        assert service.cancel(victim) is True
        result = service.run_sync()
        assert service.status(partner)["status"] == "finished"
        assert partner in result.jcts

    def test_cancelled_never_contributes_jct(self):
        service = make_service()
        dropped = service.submit(spec(50, submit=1000.0))
        service.submit(spec(10))
        service.cancel(dropped)
        result = service.run_sync()
        assert dropped not in result.jcts
        assert dropped not in result.finish_times


class TestDrain:
    def test_drain_is_idempotent(self):
        service = make_service()
        service.drain()
        service.drain()
        assert service.draining is True

    def test_run_sync_flushes_result_once(self):
        service = make_service()
        service.submit(spec(10))
        first = service.run_sync()
        assert service.finish() is first

    def test_empty_drain_yields_empty_result(self):
        result = make_service().run_sync()
        assert result.jcts == {}
        assert result.finish_times == {}

    def test_tracer_records_service_events(self):
        tracer = Tracer()
        service = make_service(tracer=tracer)
        service.submit(spec(5))
        service.run_sync()
        names = {event.name for event in tracer.events}
        assert {"service.submit", "service.drain", "service.drained"} <= names
        assert tracer.counters.get("service.submitted") == 1


class TestAsyncRun:
    def test_async_run_matches_run_sync(self):
        specs = [spec(20), spec(10, submit=5.0), spec(5, submit=30.0)]

        sync_service = make_service()
        for s in specs:
            sync_service.submit(s)
        expected = sync_service.run_sync()

        async def drive():
            service = make_service()
            runner = asyncio.ensure_future(service.run())
            await asyncio.sleep(0)  # let the loop start idle
            for s in specs:
                service.submit(s)
            service.drain()
            return await runner

        result = asyncio.run(drive())
        assert result.jcts == expected.jcts
        assert result.makespan == expected.makespan

    def test_idle_loop_waits_without_stepping(self):
        async def drive():
            service = make_service()
            runner = asyncio.ensure_future(service.run())
            for _ in range(5):
                await asyncio.sleep(0)
            steps_while_idle = service.state.steps
            service.submit(spec(10))
            service.drain()
            result = await runner
            return steps_while_idle, result

        steps_while_idle, result = asyncio.run(drive())
        assert steps_while_idle == 0
        assert len(result.jcts) == 1

    def test_wall_clock_paces_the_loop(self):
        # 1 simulated second = 1 real millisecond: the run must take
        # at least makespan milliseconds of wall time.
        import time

        async def drive():
            service = make_service(clock=WallClock(time_scale=0.001))
            service.submit(spec(100))  # 100 s simulated
            service.drain()
            return await service.run()

        started = time.monotonic()
        result = asyncio.run(drive())
        elapsed = time.monotonic() - started
        assert result.makespan == pytest.approx(100.0)
        assert elapsed >= 0.05

    def test_wall_clock_sleep_interrupted_by_submit(self):
        # A submission during a long wall-clock sleep wakes the loop;
        # the whole run stays far below the uninterrupted sleep time.
        import time

        async def drive():
            service = make_service(clock=WallClock(time_scale=1.0))
            job_id = service.submit(spec(2, submit=100.0))  # horizon 100 s away
            runner = asyncio.ensure_future(service.run())
            await asyncio.sleep(0.05)
            service.cancel(job_id)  # wake + empty the queue
            service.drain()
            return await runner

        started = time.monotonic()
        asyncio.run(drive())
        assert time.monotonic() - started < 5.0


class TestWallClockUnit:
    def test_time_scale_validation(self):
        with pytest.raises(ValueError):
            WallClock(time_scale=0.0)

    def test_past_deadline_does_not_sleep(self):
        import time

        clock = WallClock(time_scale=100.0)

        async def drive():
            await clock.pause(0.0, 0.0)   # anchors the epoch
            await clock.pause(0.0, -1.0)  # already in the past

        started = time.monotonic()
        asyncio.run(drive())
        assert time.monotonic() - started < 1.0

    def test_none_deadline_does_not_sleep(self):
        asyncio.run(WallClock(time_scale=1000.0).pause(0.0, None))
