"""Acceptance tests for incremental regrouping and batch equivalence.

Two contracts from the service design:

* **Differential**: with ``event_regroup=True`` every arrival- and
  completion-driven regrouping decision must be identical to a cold
  full re-solve by a fresh scheduler on the same inputs — the
  per-bucket decision cache is a pure accelerator, never a behavior
  change.  Checked by :class:`repro.verify.IncrementalOracle` on a
  seeded stream of 500+ arrival/completion events.
* **Bit-identity**: a virtual-time service run that pre-submits a
  workload and drains must reproduce ``ClusterSimulator.run`` on the
  same specs bit-for-bit (average JCT and makespan compared with
  ``==``, not approx).
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.muri import MuriScheduler
from repro.observe.tracer import Tracer
from repro.service import SchedulerService
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs
from repro.verify import IncrementalOracle, InvariantChecker, plan_signature


def workload(num_jobs, seed, max_gpus=16):
    trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
    specs = [s for s in build_jobs(trace, seed=seed)
             if s.num_gpus <= max_gpus]
    return trace, sorted(specs, key=lambda s: s.submit_time)


def event_driven_simulator(scheduler, tracer=None):
    return ClusterSimulator(
        scheduler,
        cluster=Cluster(2, 8),
        tracer=tracer,
        reschedule_on_arrival=True,
        arrival_reason="arrival",
        backfill_on_completion=True,
    )


class TestIncrementalDifferential:
    def test_500_event_stream_matches_cold_resolve(self):
        # The tentpole acceptance check: ≥500 arrival/completion events
        # through the warm (decision-cached) scheduler, every decision
        # compared against a fresh cold scheduler.
        trace, specs = workload(num_jobs=280, seed=7)
        tracer = Tracer()
        warm = MuriScheduler(policy="srsf", event_regroup=True,
                             tracer=tracer)
        oracle = IncrementalOracle(
            warm,
            lambda: MuriScheduler(policy="srsf", event_regroup=True),
        )
        service = SchedulerService(
            event_driven_simulator(oracle, tracer=tracer),
            trace_name=trace.name, tracer=tracer,
        )
        for spec in specs:
            service.submit(spec)
        result = service.run_sync()

        assert len(result.jcts) == len(specs)
        counters = tracer.counters
        events = (counters.get("sched.regroup.arrival", 0)
                  + counters.get("sched.regroup.completion", 0))
        assert events >= 500
        assert oracle.checks >= events
        # The cache must actually be exercised, or the differential
        # proves nothing about the incremental path.
        assert counters.get("grouping.decision_cache.hit", 0) > 0

    def test_oracle_flags_divergent_decisions(self):
        # A cold factory with a different policy must trip the oracle.
        from repro.verify import InvariantViolation

        trace, specs = workload(num_jobs=20, seed=3)
        oracle = IncrementalOracle(
            MuriScheduler(policy="srsf", event_regroup=True),
            lambda: MuriScheduler(policy="las2d", event_regroup=True),
        )
        service = SchedulerService(
            event_driven_simulator(oracle), trace_name=trace.name
        )
        for spec in specs:
            service.submit(spec)
        with pytest.raises(InvariantViolation):
            service.run_sync()

    def test_plan_signature_distinguishes_offsets(self):
        trace, specs = workload(num_jobs=6, seed=0)
        scheduler = MuriScheduler(policy="srsf")
        plan = scheduler.decide(0.0, [], {}, 16)
        assert plan_signature(plan) == ()


class TestBatchBitIdentity:
    @pytest.mark.parametrize("policy", ["srsf", "las2d"])
    def test_drained_service_reproduces_batch_run(self, policy):
        trace, specs = workload(num_jobs=60, seed=11)

        batch = ClusterSimulator(
            MuriScheduler(policy=policy), cluster=Cluster(2, 8)
        ).run(specs, trace.name)

        service = SchedulerService(
            ClusterSimulator(
                MuriScheduler(policy=policy), cluster=Cluster(2, 8)
            ),
            trace_name=trace.name,
        )
        for spec in specs:
            service.submit(spec)
        drained = service.run_sync()

        assert drained.avg_jct == batch.avg_jct
        assert drained.makespan == batch.makespan
        assert drained.jcts == batch.jcts
        assert drained.finish_times == batch.finish_times

    def test_async_virtual_run_reproduces_batch_run(self):
        import asyncio

        trace, specs = workload(num_jobs=30, seed=5)
        batch = ClusterSimulator(
            MuriScheduler(policy="srsf"), cluster=Cluster(2, 8)
        ).run(specs, trace.name)

        async def drive():
            service = SchedulerService(
                ClusterSimulator(
                    MuriScheduler(policy="srsf"), cluster=Cluster(2, 8)
                ),
                trace_name=trace.name,
            )
            for spec in specs:
                service.submit(spec)
            service.drain()
            return await service.run()

        drained = asyncio.run(drive())
        assert drained.avg_jct == batch.avg_jct
        assert drained.makespan == batch.makespan


class TestInvariantCheckedLiveLoop:
    def test_armed_checker_rides_the_service(self):
        # The InvariantChecker doubles as the service tracer: every
        # simulator and service event flows through the armed checks.
        trace, specs = workload(num_jobs=40, seed=2)
        checker = InvariantChecker(strict=True)
        scheduler = MuriScheduler(policy="srsf", event_regroup=True,
                                  tracer=checker)
        service = SchedulerService(
            event_driven_simulator(scheduler, tracer=checker),
            trace_name=trace.name, tracer=checker,
        )
        for spec in specs:
            service.submit(spec)
        result = service.run_sync()
        assert len(result.jcts) == len(specs)
        assert checker.violations == []
