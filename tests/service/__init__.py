"""Tests for the online scheduling service (repro.service)."""
