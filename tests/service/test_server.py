"""Socket round-trip tests: ServiceServer + ServiceClient end to end."""

import asyncio
import os
import threading
import time

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SubmitRejected,
    WallClock,
)
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def spec(iters, gpus=1, submit=0.0):
    return JobSpec(profile=UNIT, num_gpus=gpus, submit_time=submit,
                   num_iterations=iters)


@pytest.fixture
def serve_on(tmp_path):
    """Factory: start a daemon on a temp socket, yield a client factory."""
    started = []

    def start(clock=None):
        path = str(tmp_path / f"repro-{len(started)}.sock")
        simulator = ClusterSimulator(
            FifoScheduler(),
            cluster=Cluster(1, 2),
            restart_penalty=0.0,
            contention=IDEAL_CONTENTION,
            uncoordinated_penalty=1.0,
        )
        service = SchedulerService(simulator, clock=clock)
        server = ServiceServer(service, path, linger=2.0)
        thread = threading.Thread(
            target=lambda: asyncio.run(server.serve()), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(path):
            if time.monotonic() > deadline:
                raise RuntimeError("server socket never appeared")
            time.sleep(0.01)
        client = ServiceClient(path, timeout=30.0)
        started.append((client, server, thread))
        return client, server, thread

    try:
        yield start
    finally:
        for client, _server, thread in started:
            try:
                # Through the socket, so the wake-up happens on the
                # loop's own thread (a direct service.drain() would not
                # be thread-safe here).
                client.drain()
            except Exception:
                pass  # already drained and the server has gone away
            client.close()
            thread.join(timeout=10.0)


@pytest.fixture
def served(serve_on):
    """A virtual-time daemon: yields (client, server, thread)."""
    return serve_on()


def test_full_session_over_the_socket(served):
    client, server, thread = served
    assert client.ping() is True
    submitted = [client.submit(spec(10)), client.submit(spec(20, submit=5.0))]
    assert all(s.tenant == "default" for s in submitted)
    ids = [s.job_id for s in submitted]
    assert len(set(ids)) == 2
    status = client.status()
    assert status["jobs"] == 2
    client.drain()
    result = client.result(timeout=30.0)
    assert sorted(result.jcts) == sorted(ids)
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert not os.path.exists(server.path)


def test_rejection_raises_client_side(served):
    client, _server, _thread = served
    with pytest.raises(SubmitRejected) as excinfo:
        client.submit(spec(10, gpus=64))
    assert excinfo.value.code == "too_large"


def test_unknown_job_raises_client_side(served):
    client, _server, _thread = served
    with pytest.raises(ServiceClientError) as excinfo:
        client.status(job_id=424242)
    assert excinfo.value.code == "unknown_job"


def test_cancel_over_the_socket(serve_on):
    # Wall-clock pacing, so the far-future arrival genuinely waits and
    # the cancel deterministically lands while the job is pending (a
    # virtual clock would simulate the whole job between requests).
    client, _server, _thread = serve_on(clock=WallClock(time_scale=1.0))
    job_id = client.submit(spec(1000, submit=10_000.0)).job_id
    assert client.cancel(job_id)
    assert not client.cancel(job_id)
    assert client.status(job_id)["status"] == "failed"


def test_submit_dict_payload_deprecated(served):
    client, _server, _thread = served
    with pytest.warns(DeprecationWarning):
        submitted = client.submit({
            "durations": [0.25, 0.25, 0.25, 0.25],
            "num_gpus": 1,
            "num_iterations": 5,
        })
    assert client.status(submitted.job_id)["status"] in (
        "pending", "running", "finished")
