"""Tests for the wire protocol and the server's request dispatch."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler
from repro.service import SchedulerService, ServiceServer
from repro.service.protocol import (
    decode_line,
    encode_line,
    error_response,
    spec_from_dict,
    spec_to_dict,
)
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_spec(**kwargs):
    defaults = dict(profile=UNIT, num_gpus=2, submit_time=3.5,
                    num_iterations=40, model="resnet50", name="probe")
    defaults.update(kwargs)
    return JobSpec(**defaults)


class TestSpecSerialization:
    def test_round_trip_preserves_scheduling_fields(self):
        original = make_spec()
        rebuilt = spec_from_dict(spec_to_dict(original))
        assert rebuilt.profile.durations == original.profile.durations
        assert rebuilt.num_gpus == original.num_gpus
        assert rebuilt.submit_time == original.submit_time
        assert rebuilt.num_iterations == original.num_iterations
        assert rebuilt.model == original.model
        assert rebuilt.name == original.name

    def test_job_id_never_taken_from_the_wire(self):
        payload = spec_to_dict(make_spec())
        payload["job_id"] = 7
        first = spec_from_dict(payload)
        second = spec_from_dict(payload)
        assert first.job_id != second.job_id

    def test_defaults_applied(self):
        spec = spec_from_dict({"durations": [1.0, 0.0, 0.0, 0.0]})
        assert spec.num_gpus == 1
        assert spec.submit_time == 0.0

    def test_missing_durations_raises(self):
        with pytest.raises(KeyError):
            spec_from_dict({"num_gpus": 2})


class TestLineCodec:
    def test_round_trip(self):
        message = {"op": "submit", "spec": {"durations": [1, 2]}}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert decode_line(line) == message

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2]\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"{nope\n")

    def test_error_response_shape(self):
        response = error_response("queue_full", "the queue is full")
        assert response == {
            "ok": False, "error": "queue_full",
            "message": "the queue is full",
        }


def make_server(cluster=None, **kwargs):
    simulator = ClusterSimulator(
        FifoScheduler(),
        cluster=cluster or Cluster(1, 2),
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
    )
    service = SchedulerService(simulator, **kwargs)
    return ServiceServer(service, path="/unused.sock")


class TestDispatch:
    def test_unknown_op(self):
        response = make_server().dispatch({"op": "reboot"})
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_missing_op(self):
        assert make_server().dispatch({})["error"] == "bad_request"

    def test_ping(self):
        assert make_server().dispatch({"op": "ping"})["pong"] is True

    def test_submit_and_status(self):
        server = make_server()
        response = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=1))}
        )
        assert response["ok"] is True
        job_id = response["job_id"]
        status = server.dispatch({"op": "status", "job_id": job_id})
        assert status["status"]["status"] == "pending"

    def test_submit_rejection_carries_code(self):
        server = make_server(cluster=Cluster(1, 2))
        response = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=8))}
        )
        assert response["ok"] is False
        assert response["error"] == "too_large"

    def test_unknown_job_status(self):
        response = make_server().dispatch({"op": "status", "job_id": 999})
        assert response["error"] == "unknown_job"

    def test_malformed_spec_is_bad_request(self):
        response = make_server().dispatch(
            {"op": "submit", "spec": {"durations": "nope"}}
        )
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_cancel_and_drain_and_result(self):
        server = make_server()
        job_id = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=1))}
        )["job_id"]
        assert server.dispatch({"op": "cancel", "job_id": job_id}) == {
            "ok": True, "cancelled": True,
        }
        assert server.dispatch({"op": "result"}) == {
            "ok": True, "done": False,
        }
        assert server.dispatch({"op": "drain"})["draining"] is True
        server.service.run_sync(drain=False)
        response = server.dispatch({"op": "result"})
        assert response["done"] is True
        assert response["result"]["jcts"] == {}
