"""Tests for the wire protocol and the server's request dispatch."""

import pytest

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.classic import FifoScheduler
from repro.service import SchedulerService, ServiceServer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REJECTION_CODES,
    CancelRequest,
    DrainRequest,
    ErrorResult,
    PingRequest,
    ResultRequest,
    StatusRequest,
    SubmitRequest,
    SubmitResult,
    decode_line,
    encode_line,
    error_response,
    request_from_wire,
    response_from_wire,
    spec_from_dict,
    spec_to_dict,
)
from repro.sim.contention import IDEAL_CONTENTION
from repro.sim.simulator import ClusterSimulator

UNIT = StageProfile((0.25, 0.25, 0.25, 0.25))


def make_spec(**kwargs):
    defaults = dict(profile=UNIT, num_gpus=2, submit_time=3.5,
                    num_iterations=40, model="resnet50", name="probe")
    defaults.update(kwargs)
    return JobSpec(**defaults)


class TestSpecSerialization:
    def test_round_trip_preserves_scheduling_fields(self):
        original = make_spec()
        rebuilt = spec_from_dict(spec_to_dict(original))
        assert rebuilt.profile.durations == original.profile.durations
        assert rebuilt.num_gpus == original.num_gpus
        assert rebuilt.submit_time == original.submit_time
        assert rebuilt.num_iterations == original.num_iterations
        assert rebuilt.model == original.model
        assert rebuilt.name == original.name

    def test_job_id_never_taken_from_the_wire(self):
        payload = spec_to_dict(make_spec())
        payload["job_id"] = 7
        first = spec_from_dict(payload)
        second = spec_from_dict(payload)
        assert first.job_id != second.job_id

    def test_defaults_applied(self):
        spec = spec_from_dict({"durations": [1.0, 0.0, 0.0, 0.0]})
        assert spec.num_gpus == 1
        assert spec.submit_time == 0.0

    def test_missing_durations_raises(self):
        with pytest.raises(KeyError):
            spec_from_dict({"num_gpus": 2})


class TestLineCodec:
    def test_round_trip(self):
        message = {"op": "submit", "spec": {"durations": [1, 2]}}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert decode_line(line) == message

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2]\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"{nope\n")

    def test_error_response_shape(self):
        response = error_response("queue_full", "the queue is full")
        assert response == {
            "ok": False, "error": "queue_full",
            "message": "the queue is full",
        }


class TestVersionedRequests:
    def test_v2_submit_round_trip(self):
        request = SubmitRequest(spec=make_spec(), tenant="alice", vc="vc1")
        wire = request.to_wire()
        assert wire["version"] == PROTOCOL_VERSION
        assert wire["tenant"] == "alice"
        assert wire["vc"] == "vc1"
        rebuilt = request_from_wire(decode_line(encode_line(request)))
        assert isinstance(rebuilt, SubmitRequest)
        assert rebuilt.tenant == "alice"
        assert rebuilt.vc == "vc1"
        assert rebuilt.version == PROTOCOL_VERSION
        assert rebuilt.spec.num_gpus == request.spec.num_gpus

    def test_v1_submit_decodes_with_defaults(self):
        # The exact PR-5 wire shape: no version, no tenant, no vc.
        payload = {"op": "submit", "spec": spec_to_dict(make_spec())}
        request = request_from_wire(payload)
        assert isinstance(request, SubmitRequest)
        assert request.version == 1
        assert request.tenant == "default"
        assert request.vc is None

    def test_v1_to_wire_omits_v2_fields(self):
        request = SubmitRequest(
            spec=make_spec(), tenant="alice", vc="vc1", version=1
        )
        wire = request.to_wire()
        assert set(wire) == {"op", "spec"}

    def test_fieldless_and_operand_requests_round_trip(self):
        for request in (
            StatusRequest(job_id=7),
            StatusRequest(),
            CancelRequest(job_id=3),
            DrainRequest(),
            ResultRequest(),
            PingRequest(),
        ):
            rebuilt = request_from_wire(request.to_wire())
            assert rebuilt == request

    def test_v1_operand_requests_decode(self):
        assert request_from_wire({"op": "cancel", "job_id": 5}) == \
            CancelRequest(job_id=5, version=1)
        assert request_from_wire({"op": "drain"}) == DrainRequest(version=1)

    def test_future_version_rejected(self):
        payload = {"op": "ping", "version": PROTOCOL_VERSION + 1}
        with pytest.raises(ValueError):
            request_from_wire(payload)
        with pytest.raises(ValueError):
            request_from_wire({"op": "ping", "version": 0})


class TestVersionedResponses:
    def test_submit_result_keeps_v1_field_names(self):
        wire = SubmitResult(job_id=9, tenant="alice", vc="vc0").to_wire()
        # A v1 client reads response["job_id"]; it must stay put.
        assert wire["ok"] is True
        assert wire["job_id"] == 9
        rebuilt = response_from_wire("submit", wire)
        assert isinstance(rebuilt, SubmitResult)
        assert rebuilt.vc == "vc0"
        assert int(rebuilt) == 9

    def test_error_decodes_regardless_of_op(self):
        wire = error_response("queue_full", "full")
        for op in ("submit", "status", "nonsense"):
            decoded = response_from_wire(op, wire)
            assert isinstance(decoded, ErrorResult)
            assert decoded.code == "queue_full"
            assert decoded.version == 1  # v1 error shape has no version

    def test_rejection_codes_catalogue(self):
        # PR-5 codes stay, the fleet codes extend the list.
        assert {"queue_full", "draining", "too_large",
                "stopped"} < set(REJECTION_CODES)
        assert {"unknown_tenant", "quota_exceeded", "credits_exhausted",
                "no_shard"} < set(REJECTION_CODES)


def make_server(cluster=None, **kwargs):
    simulator = ClusterSimulator(
        FifoScheduler(),
        cluster=cluster or Cluster(1, 2),
        restart_penalty=0.0,
        contention=IDEAL_CONTENTION,
        uncoordinated_penalty=1.0,
    )
    service = SchedulerService(simulator, **kwargs)
    return ServiceServer(service, path="/unused.sock")


class TestDispatch:
    def test_unknown_op(self):
        response = make_server().dispatch({"op": "reboot"})
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_missing_op(self):
        assert make_server().dispatch({})["error"] == "bad_request"

    def test_ping(self):
        assert make_server().dispatch({"op": "ping"})["pong"] is True

    def test_submit_and_status(self):
        server = make_server()
        response = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=1))}
        )
        assert response["ok"] is True
        job_id = response["job_id"]
        status = server.dispatch({"op": "status", "job_id": job_id})
        assert status["status"]["status"] == "pending"

    def test_submit_rejection_carries_code(self):
        server = make_server(cluster=Cluster(1, 2))
        response = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=8))}
        )
        assert response["ok"] is False
        assert response["error"] == "too_large"

    def test_unknown_job_status(self):
        response = make_server().dispatch({"op": "status", "job_id": 999})
        assert response["error"] == "unknown_job"

    def test_malformed_spec_is_bad_request(self):
        response = make_server().dispatch(
            {"op": "submit", "spec": {"durations": "nope"}}
        )
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_cancel_and_drain_and_result(self):
        server = make_server()
        job_id = server.dispatch(
            {"op": "submit", "spec": spec_to_dict(make_spec(num_gpus=1))}
        )["job_id"]
        cancelled = server.dispatch({"op": "cancel", "job_id": job_id})
        assert cancelled["ok"] is True
        assert cancelled["cancelled"] is True
        poll = server.dispatch({"op": "result"})
        assert poll["ok"] is True
        assert poll["done"] is False
        assert server.dispatch({"op": "drain"})["draining"] is True
        server.service.run_sync(drain=False)
        response = server.dispatch({"op": "result"})
        assert response["done"] is True
        assert response["result"]["jcts"] == {}
