#!/usr/bin/env python
"""Docstring lint for the public observability/sweep/verify/bench APIs.

Walks every module under the default roots (``src/repro/observe/``,
``src/repro/sweep/``, ``src/repro/verify/``, ``src/repro/service/``,
``src/repro/bench/``, ``src/repro/fleet/``, ``src/repro/elastic/``,
``src/repro/hetero/``, ``src/repro/replay/`` and ``src/repro/trace/``)
and fails (exit 1) if any *public*
definition — module, class, function, or method whose name does not
start with an underscore — lacks a docstring. Dunders (including
``__init__``) are exempt: constructor arguments are documented on the
class.

Usage::

    python tools/check_docstrings.py [package_dir ...]

With no arguments, lints the default roots above.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_public(name: str) -> bool:
    """A name is public when it has no leading underscore (dunders are
    handled separately by the walker)."""
    return not name.startswith("_")


def _walk_definitions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(dotted_name, node)`` for every public def/class,
    recursing into public classes for their methods."""
    stack: List[Tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _DEF_NODES):
                continue
            if not _is_public(child.name):
                continue
            dotted = f"{prefix}{child.name}"
            yield dotted, child
            if isinstance(child, ast.ClassDef):
                stack.append((f"{dotted}.", child))


def missing_docstrings(path: Path) -> List[str]:
    """Return dotted names of public definitions in ``path`` that lack
    a docstring (the module itself included, listed as ``<module>``)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for dotted, node in _walk_definitions(tree):
        if ast.get_docstring(node) is None:
            missing.append(dotted)
    return sorted(missing)


def main(argv: List[str]) -> int:
    """Lint the given package directories; print offenders, return 1
    if any public definition lacks a docstring."""
    roots = [Path(a) for a in argv] or [
        Path("src/repro/observe"), Path("src/repro/sweep"),
        Path("src/repro/verify"), Path("src/repro/service"),
        Path("src/repro/bench"), Path("src/repro/fleet"),
        Path("src/repro/elastic"), Path("src/repro/hetero"),
        Path("src/repro/replay"), Path("src/repro/trace"),
    ]
    failures = 0
    checked = 0
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
        for path in sorted(root.rglob("*.py")):
            checked += 1
            for name in missing_docstrings(path):
                print(f"{path}: missing docstring: {name}")
                failures += 1
    if failures:
        print(f"\n{failures} public definition(s) without docstrings.")
        return 1
    print(f"docstring lint: {checked} file(s) clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
