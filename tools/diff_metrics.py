#!/usr/bin/env python
"""Metric regression gate for experiment sweeps and perf benchmarks.

Default mode compares the key metrics (average JCT and makespan per
run id) from one or more sweep JSONL stores against a committed
baseline JSON and fails when any run regressed by more than the
tolerance.  Shard stores can be passed together — they are merged
before diffing, so the CI matrix uploads its three shard artifacts
and this gate checks the union.

``--bench`` mode instead compares one ``repro bench`` output document
(``BENCH_grouping.json`` / ``BENCH_service.json`` /
``BENCH_fleet.json``) against its committed baseline.  Only the machine-speed *normalized* metrics are
gated (see ``docs/performance.md``); metrics present on one side only
are reported as notices, not failures, so a ``--quick`` CI run gates
cleanly against a committed full-suite baseline.

Regressions are one-sided in both modes: a *higher* value than the
baseline is a failure, a lower one is reported as a notice (commit a
refreshed baseline with ``--update`` to lock in improvements).  In
sweep mode, run ids present in only one side always fail the gate: a
missing run means the sweep grid silently shrank, a new run means the
baseline is stale — both want an explicit ``--update``.

Usage::

    python tools/diff_metrics.py shard-*.jsonl --baseline benchmarks/baselines/sweep_metrics.json
    python tools/diff_metrics.py shard-*.jsonl --baseline ... --update
    python tools/diff_metrics.py --bench bench-out/BENCH_grouping.json \
        --baseline BENCH_grouping.json --tolerance 0.10

Exit codes: 0 clean, 1 regression/mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import load_many  # noqa: E402

#: Metrics gated per run id; all are lower-is-better.
METRICS = ("avg_jct", "makespan")


def collect_metrics(paths: List[str]) -> Dict[str, dict]:
    """Merge sweep stores and reduce them to the gated metrics.

    Returns ``{run_id: {"avg_jct": ..., "makespan": ..., **context}}``
    for every successful run; failed runs raise, since a gate that
    skips errored cells would pass vacuously.
    """
    merged = {run.run_id: run for run in load_many(paths)}
    out: Dict[str, dict] = {}
    for run_id, run in sorted(merged.items()):
        if not run.ok:
            raise SystemExit(
                f"error: run {run_id} is not ok (status={run.status}) — "
                "fix or re-run the sweep before gating"
            )
        sim = run.simulation_result()
        spec = run.spec
        out[run_id] = {
            "experiment": spec.experiment if spec else "?",
            "trace_id": spec.trace_id if spec else "?",
            "label": spec.label if spec else "?",
            "avg_jct": sim.avg_jct,
            "makespan": sim.makespan,
        }
    return out


def diff_bench(
    current_doc: dict,
    baseline_doc: dict,
    tolerance: float,
) -> int:
    """Diff two bench documents on their gated metrics; return failures.

    Gated metrics are the normalized (machine-speed invariant) values
    flattened by :func:`repro.bench.gated_metrics`; all of them are
    lower-is-better.  Metrics present in only one document (a quick run
    gating against a full baseline) are notices, not failures, but
    mismatched schema versions or suites refuse to compare at all.
    """
    from repro.bench import gated_metrics

    for field in ("schema", "suite"):
        if current_doc.get(field) != baseline_doc.get(field):
            raise SystemExit(
                f"error: bench {field} mismatch "
                f"({current_doc.get(field)!r} vs {baseline_doc.get(field)!r})"
                " — regenerate the baseline with `repro bench`"
            )
    current = gated_metrics(current_doc)
    baseline = gated_metrics(baseline_doc)
    for name in sorted(set(baseline) - set(current)):
        print(f"note {name}: in baseline only (quick run?) — skipped")
    for name in sorted(set(current) - set(baseline)):
        print(f"note {name}: not in baseline — refresh it with --update")

    failures = 0
    improvements = 0
    shared = sorted(set(current) & set(baseline))
    for name in shared:
        before, after = baseline[name], current[name]
        if before <= 0:
            continue
        delta = (after - before) / before
        context = f"{name}: {before:.3f} -> {after:.3f} ({delta:+.1%})"
        if delta > tolerance:
            print(f"FAIL {context} exceeds +{tolerance:.0%}")
            failures += 1
        elif delta < -tolerance:
            print(f"note {context} improved — consider --update")
            improvements += 1
    print(
        f"compared {len(shared)} gated metric(s): "
        f"{failures} failure(s), {improvements} improvement notice(s)"
    )
    return failures


def diff(
    current: Dict[str, dict],
    baseline: Dict[str, dict],
    tolerance: float,
) -> int:
    """Print the comparison; return the number of gate failures."""
    failures = 0
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    for run_id in missing:
        entry = baseline[run_id]
        print(
            f"FAIL {run_id} ({entry['experiment']}/{entry['trace_id']}/"
            f"{entry['label']}): in baseline but missing from results"
        )
        failures += 1
    for run_id in new:
        entry = current[run_id]
        print(
            f"FAIL {run_id} ({entry['experiment']}/{entry['trace_id']}/"
            f"{entry['label']}): not in baseline — refresh it with --update"
        )
        failures += 1

    improvements = 0
    for run_id in sorted(set(current) & set(baseline)):
        now, then = current[run_id], baseline[run_id]
        for metric in METRICS:
            before, after = float(then[metric]), float(now[metric])
            if before <= 0:
                continue
            delta = (after - before) / before
            context = (
                f"{run_id} ({now['experiment']}/{now['trace_id']}/"
                f"{now['label']}) {metric}: "
                f"{before:.2f} -> {after:.2f} ({delta:+.1%})"
            )
            if delta > tolerance:
                print(f"FAIL {context} exceeds +{tolerance:.0%}")
                failures += 1
            elif delta < -tolerance:
                print(f"note {context} improved — consider --update")
                improvements += 1
    print(
        f"compared {len(set(current) & set(baseline))} run(s): "
        f"{failures} failure(s), {improvements} improvement notice(s)"
    )
    return failures


def main(argv: List[str]) -> int:
    """Entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results", nargs="+",
        help="sweep JSONL store(s); shards are merged before diffing",
    )
    parser.add_argument(
        "--baseline", required=True,
        help="committed baseline JSON to diff against (or write, "
             "with --update)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative increase per metric (default 0.05)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the given results instead of "
             "diffing",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="treat the (single) result as a `repro bench` JSON "
             "document and gate its normalized metrics",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    if args.bench:
        if len(args.results) != 1:
            parser.error("--bench takes exactly one result document")
        current_doc = json.loads(
            Path(args.results[0]).read_text(encoding="utf-8")
        )
        baseline_path = Path(args.baseline)
        if args.update:
            baseline_path.parent.mkdir(parents=True, exist_ok=True)
            baseline_path.write_text(
                json.dumps(current_doc, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"baseline updated: {baseline_path}")
            return 0
        if not baseline_path.exists():
            print(
                f"error: baseline {baseline_path} does not exist — "
                "generate it with `repro bench` and commit it",
                file=sys.stderr,
            )
            return 2
        baseline_doc = json.loads(baseline_path.read_text(encoding="utf-8"))
        return 1 if diff_bench(current_doc, baseline_doc, args.tolerance) else 0

    current = collect_metrics(args.results)
    if not current:
        print("error: no runs found in the given stores", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {baseline_path} ({len(current)} runs)")
        return 0

    if not baseline_path.exists():
        print(
            f"error: baseline {baseline_path} does not exist — generate "
            "it with --update and commit it",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = diff(current, baseline, args.tolerance)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
