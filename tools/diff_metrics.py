#!/usr/bin/env python
"""Metric regression gate for experiment sweeps.

Compares the key metrics (average JCT and makespan per run id) from
one or more sweep JSONL stores against a committed baseline JSON and
fails when any run regressed by more than the tolerance.  Shard
stores can be passed together — they are merged before diffing, so
the CI matrix uploads its three shard artifacts and this gate checks
the union.

Regressions are one-sided: a *higher* avg JCT or makespan than the
baseline is a failure, a lower one is reported as a notice (commit a
refreshed baseline with ``--update`` to lock in improvements).  Run
ids present in only one side always fail the gate: a missing run
means the sweep grid silently shrank, a new run means the baseline is
stale — both want an explicit ``--update``.

Usage::

    python tools/diff_metrics.py shard-*.jsonl --baseline benchmarks/baselines/sweep_metrics.json
    python tools/diff_metrics.py shard-*.jsonl --baseline ... --update

Exit codes: 0 clean, 1 regression/mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import load_many  # noqa: E402

#: Metrics gated per run id; all are lower-is-better.
METRICS = ("avg_jct", "makespan")


def collect_metrics(paths: List[str]) -> Dict[str, dict]:
    """Merge sweep stores and reduce them to the gated metrics.

    Returns ``{run_id: {"avg_jct": ..., "makespan": ..., **context}}``
    for every successful run; failed runs raise, since a gate that
    skips errored cells would pass vacuously.
    """
    merged = {run.run_id: run for run in load_many(paths)}
    out: Dict[str, dict] = {}
    for run_id, run in sorted(merged.items()):
        if not run.ok:
            raise SystemExit(
                f"error: run {run_id} is not ok (status={run.status}) — "
                "fix or re-run the sweep before gating"
            )
        sim = run.simulation_result()
        spec = run.spec
        out[run_id] = {
            "experiment": spec.experiment if spec else "?",
            "trace_id": spec.trace_id if spec else "?",
            "label": spec.label if spec else "?",
            "avg_jct": sim.avg_jct,
            "makespan": sim.makespan,
        }
    return out


def diff(
    current: Dict[str, dict],
    baseline: Dict[str, dict],
    tolerance: float,
) -> int:
    """Print the comparison; return the number of gate failures."""
    failures = 0
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    for run_id in missing:
        entry = baseline[run_id]
        print(
            f"FAIL {run_id} ({entry['experiment']}/{entry['trace_id']}/"
            f"{entry['label']}): in baseline but missing from results"
        )
        failures += 1
    for run_id in new:
        entry = current[run_id]
        print(
            f"FAIL {run_id} ({entry['experiment']}/{entry['trace_id']}/"
            f"{entry['label']}): not in baseline — refresh it with --update"
        )
        failures += 1

    improvements = 0
    for run_id in sorted(set(current) & set(baseline)):
        now, then = current[run_id], baseline[run_id]
        for metric in METRICS:
            before, after = float(then[metric]), float(now[metric])
            if before <= 0:
                continue
            delta = (after - before) / before
            context = (
                f"{run_id} ({now['experiment']}/{now['trace_id']}/"
                f"{now['label']}) {metric}: "
                f"{before:.2f} -> {after:.2f} ({delta:+.1%})"
            )
            if delta > tolerance:
                print(f"FAIL {context} exceeds +{tolerance:.0%}")
                failures += 1
            elif delta < -tolerance:
                print(f"note {context} improved — consider --update")
                improvements += 1
    print(
        f"compared {len(set(current) & set(baseline))} run(s): "
        f"{failures} failure(s), {improvements} improvement notice(s)"
    )
    return failures


def main(argv: List[str]) -> int:
    """Entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results", nargs="+",
        help="sweep JSONL store(s); shards are merged before diffing",
    )
    parser.add_argument(
        "--baseline", required=True,
        help="committed baseline JSON to diff against (or write, "
             "with --update)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative increase per metric (default 0.05)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the given results instead of "
             "diffing",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    current = collect_metrics(args.results)
    if not current:
        print("error: no runs found in the given stores", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {baseline_path} ({len(current)} runs)")
        return 0

    if not baseline_path.exists():
        print(
            f"error: baseline {baseline_path} does not exist — generate "
            "it with --update and commit it",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = diff(current, baseline, args.tolerance)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
